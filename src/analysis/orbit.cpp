#include "analysis/orbit.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <map>
#include <utility>

#include "graph/bfs_batch.hpp"
#include "ipg/static_check.hpp"
#include "shard/partition.hpp"
#include "util/narrow.hpp"
#include "util/prng.hpp"

namespace ipg {

namespace {

/// Sentinel for "label is not a node" across both backends.
constexpr std::uint64_t kNoNode = ~0ull;

constexpr std::uint32_t kNoSlot = 0xffffffffu;

/// Representative sweeps smaller than this run one scalar BFS per source:
/// a near-empty 64-lane batch still pays a full per-level O(N) update
/// pass, so for a handful of sources the scalar engine is strictly faster
/// (and bit-identical — the PR 4 contract). Depends only on the group
/// size, never on thread or shard counts, so determinism is preserved.
constexpr std::size_t kScalarSweepCutover = 16;

struct UnionFind {
  std::vector<std::uint32_t> parent;

  explicit UnionFind(std::size_t n) : parent(n) {
    for (std::size_t i = 0; i < n; ++i) parent[i] = static_cast<std::uint32_t>(i);
  }

  std::uint32_t find(std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }

  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    // Smaller root wins, so every class root is its minimum member — the
    // renumbering below then yields ascending representatives for free.
    if (b < a) std::swap(a, b);
    parent[b] = a;
  }
};

bool blocks_identical(const SuperIPSpec& spec) {
  const Label block0 = spec.seed_block(0);
  for (int i = 1; i < spec.l; ++i) {
    if (spec.seed_block(i) != block0) return false;
  }
  return true;
}

bool symbols_distinct(const Label& x) {
  std::array<bool, 256> seen{};
  for (const std::uint8_t s : x) {
    if (seen[s]) return false;
    seen[s] = true;
  }
  return true;
}

/// Symbol map sending `from` to `to` position-wise, identity elsewhere.
/// False when the images conflict (repeated symbol, different targets) or
/// the map would not be injective on the touched symbols.
bool relabel_from_images(const Label& from, const Label& to,
                         std::vector<std::uint8_t>& map) {
  map.resize(256);
  for (std::size_t s = 0; s < 256; ++s) map[s] = static_cast<std::uint8_t>(s);
  std::array<bool, 256> assigned{};
  std::array<bool, 256> hit{};
  for (std::size_t i = 0; i < from.size(); ++i) {
    const std::uint8_t s = from[i];
    const std::uint8_t t = to[i];
    if (assigned[s]) {
      if (map[s] != t) return false;
      continue;
    }
    if (hit[t]) return false;
    assigned[s] = true;
    hit[t] = true;
    map[s] = t;
  }
  return true;
}

/// The certified symbol-relabel layer: its generators plus the data the
/// canonicalizer needs (anchor content and seed shape).
struct RelabelFamily {
  bool canonical = false;  ///< the full family certified; canon maps apply
  bool symmetric = false;  ///< whole-label anchoring (else block-0)
  int m = 0;
  Label anchor;  ///< nucleus seed (plain) or full seed (symmetric)
  std::vector<OrbitAutomorphism> gens;
};

/// Builds and certifies the relabel family for `spec`. `try_node` maps a
/// label to its node id or kNoNode. The family is all-or-nothing: the
/// anchoring argument (every orbit holds exactly one anchored form, and
/// the anchoring map is a product of the certified generators) needs the
/// whole generator family, so one failed candidate drops the layer.
template <class TryNode>
RelabelFamily certify_relabels(const SuperIPSpec& spec, TryNode&& try_node) {
  RelabelFamily fam;
  fam.m = spec.m;
  const bool plain = blocks_identical(spec);
  const Label block0 = spec.seed_block(0);
  fam.symmetric = !plain && symbols_distinct(spec.seed);
  if (plain) {
    if (!symbols_distinct(block0)) return fam;
    fam.anchor = block0;
    // Diagonal relabelings c -> c.gamma for each nucleus generator: the
    // same symbol map rewrites every block, so the map commutes with the
    // expanded super-generators too.
    std::vector<std::uint8_t> map;
    Label image(spec.seed.size());
    for (const Generator& g : spec.nucleus_gens) {
      const Label target = g.perm.apply(block0);
      if (!relabel_from_images(block0, target, map)) return fam;
      for (std::size_t i = 0; i < spec.seed.size(); ++i) {
        image[i] = map[spec.seed[i]];
      }
      if (try_node(image) == kNoNode) return fam;
      OrbitAutomorphism a;
      a.kind = OrbitAutomorphism::Kind::kSymbolRelabel;
      a.name = "relabel:" + g.name;
      a.symbol_map = map;
      fam.gens.push_back(std::move(a));
    }
  } else if (fam.symmetric) {
    fam.anchor = spec.seed;
    // Neighbor relabelings seed -> seed.g for every lifted generator:
    // together they generate the left-multiplication group of the Cayley
    // graph (Section 3.5), which is transitive.
    const IPGraphSpec ip = spec.to_ip_spec();
    std::vector<std::uint8_t> map;
    for (const Generator& g : ip.generators) {
      const Label target = g.perm.apply(ip.seed);
      if (!relabel_from_images(ip.seed, target, map)) return fam;
      if (try_node(target) == kNoNode) return fam;
      OrbitAutomorphism a;
      a.kind = OrbitAutomorphism::Kind::kSymbolRelabel;
      a.name = "relabel:" + g.name;
      a.symbol_map = map;
      fam.gens.push_back(std::move(a));
    }
  } else {
    return fam;  // mixed seed shape: no certified relabel layer
  }
  fam.canonical = !fam.gens.empty();
  return fam;
}

/// Canonical form of `x` under the relabel group: the unique orbit element
/// whose anchored positions carry the anchor content (block 0 = nucleus
/// seed for plain shapes, the whole label = seed for symmetric ones).
/// False when x's anchored content is not a symbol arrangement of the
/// anchor — impossible for genuine nodes, and surfaced by the caller's
/// contract rather than silently merged.
bool canonicalize(const RelabelFamily& fam, const Label& x, Label& out,
                  std::vector<std::uint8_t>& map) {
  const std::size_t prefix = fam.symmetric
                                 ? x.size()
                                 : static_cast<std::size_t>(fam.m);
  map.resize(256);
  for (std::size_t s = 0; s < 256; ++s) map[s] = static_cast<std::uint8_t>(s);
  std::array<bool, 256> assigned{};
  std::array<bool, 256> hit{};
  for (std::size_t i = 0; i < prefix; ++i) {
    const std::uint8_t s = x[i];
    const std::uint8_t t = fam.anchor[i];
    if (assigned[s]) {
      if (map[s] != t) return false;
      continue;
    }
    if (hit[t]) return false;
    assigned[s] = true;
    hit[t] = true;
    map[s] = t;
  }
  out.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = map[x[i]];
  return true;
}

/// Index-permutation candidates: expanded block permutations (all of
/// Sym(l) for the instance sizes this library enumerates) and diagonal
/// nucleus permutations (the same nucleus generator applied inside every
/// block). Certification happens in certify_index_perms.
std::vector<Permutation> index_perm_candidates(const SuperIPSpec& spec,
                                               const OrbitOptions& opts) {
  std::vector<Permutation> out;
  const int l = spec.l;
  const int m = spec.m;
  if (l >= 2 && l <= 6) {  // l! <= 720 block permutations
    std::vector<std::uint8_t> blocks(as_size(l));
    for (int i = 0; i < l; ++i) blocks[as_size(i)] = static_cast<std::uint8_t>(i);
    while (std::next_permutation(blocks.begin(), blocks.end())) {
      if (opts.module_preserving_only && blocks[0] != 0) continue;
      out.push_back(Permutation(blocks).expand_blocks(m));
    }
  }
  for (const Generator& g : spec.nucleus_gens) {
    if (g.perm.is_identity()) continue;
    std::vector<std::uint8_t> diag(as_size(l * m));
    for (int b = 0; b < l; ++b) {
      for (int i = 0; i < m; ++i) {
        diag[as_size(b * m + i)] =
            static_cast<std::uint8_t>(b * m + g.perm[i]);
      }
    }
    Permutation p(std::move(diag));
    bool dup = false;
    for (const Permutation& q : out) {
      if (q == p) {
        dup = true;
        break;
      }
    }
    if (!dup) out.push_back(std::move(p));
  }
  return out;
}

/// Certifies each candidate sigma: conjugation sigma^-1 g sigma must map
/// every lifted generator into the generator set (so arcs map to arcs,
/// possibly with a different tag) and seed.sigma must be a node (so the
/// image vertex set is the vertex set).
template <class TryNode>
std::vector<OrbitAutomorphism> certify_index_perms(const SuperIPSpec& spec,
                                                   const OrbitOptions& opts,
                                                   TryNode&& try_node) {
  std::vector<OrbitAutomorphism> out;
  const IPGraphSpec ip = spec.to_ip_spec();
  for (Permutation& sigma : index_perm_candidates(spec, opts)) {
    const Permutation inv = sigma.inverse();
    bool ok = true;
    for (const Generator& g : ip.generators) {
      const Permutation conj = inv.then(g.perm).then(sigma);
      bool in_set = false;
      for (const Generator& h : ip.generators) {
        if (h.perm == conj) {
          in_set = true;
          break;
        }
      }
      if (!in_set) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    if (try_node(sigma.apply(ip.seed)) == kNoNode) continue;
    OrbitAutomorphism a;
    a.kind = OrbitAutomorphism::Kind::kIndexPermutation;
    a.name = "indexperm:" + sigma.to_cycle_string();
    a.index_perm = std::move(sigma);
    out.push_back(std::move(a));
  }
  return out;
}

/// Backend adapters: the quotient builder only needs size / unrank /
/// membership, so one template serves the materialized and implicit paths.
struct MaterializedBackend {
  const IPGraph* g;

  std::uint64_t size() const { return g->num_nodes(); }
  void label_into(std::uint64_t u, Label& out) const {
    g->label_into(static_cast<Node>(u), out);
  }
  std::uint64_t try_node(const Label& x) const {
    const Node v = g->node_of(x);
    return v == kInvalidIPNode ? kNoNode : v;
  }
};

struct ImplicitBackend {
  const SuperRanking* ranking;

  std::uint64_t size() const { return ranking->size(); }
  void label_into(std::uint64_t u, Label& out) const {
    ranking->unrank_into(u, out);
  }
  std::uint64_t try_node(const Label& x) const {
    const std::uint64_t r = ranking->try_rank(x);
    return r == SuperRanking::kInvalidRank ? kNoNode : r;
  }
};

template <class Backend>
OrbitQuotient build_quotient(const Backend& backend, const SuperIPSpec& spec,
                             const OrbitOptions& opts) {
  OrbitQuotient out;
  out.num_nodes = backend.size();
  const std::uint64_t n = out.num_nodes;
  if (n == 0) return out;

  const auto try_node = [&backend](const Label& x) {
    return backend.try_node(x);
  };
  RelabelFamily relabels = certify_relabels(spec, try_node);
  std::vector<OrbitAutomorphism> index_gens =
      certify_index_perms(spec, opts, try_node);

  // Pass 1 — symbol-relabel layer by anchoring: every node is mapped to
  // the unique anchored element of its relabel orbit in O(l*m), with one
  // node lookup and no union-find. Nodes sharing an anchor share an orbit
  // (the anchoring map is a product of certified generators); processing
  // ids in ascending order makes the first member of each slot its
  // minimum, i.e. the representative.
  out.orbit_of.assign(as_size(n), 0);
  std::vector<std::uint32_t> slot(as_size(n), kNoSlot);
  std::vector<std::uint64_t> reps;
  std::vector<std::uint64_t> counts;
  Label x, y;
  std::vector<std::uint8_t> map_scratch;
  for (std::uint64_t u = 0; u < n; ++u) {
    std::uint64_t anchor = u;
    if (relabels.canonical) {
      backend.label_into(u, x);
      if (canonicalize(relabels, x, y, map_scratch)) {
        anchor = backend.try_node(y);
      } else {
        anchor = kNoNode;
      }
      // Genuine nodes always anchor (their block contents are symbol
      // arrangements of the seed's); a miss means the spec and the node
      // set disagree, so fail loudly rather than silently under-merge.
      IPG_CONTRACT(anchor != kNoNode);
      if (anchor == kNoNode) anchor = u;  // release-mode safe fallback
    }
    std::uint32_t s = slot[as_size(anchor)];
    if (s == kNoSlot) {
      s = static_cast<std::uint32_t>(reps.size());
      slot[as_size(anchor)] = s;
      reps.push_back(u);
      counts.push_back(0);
    }
    out.orbit_of[as_size(u)] = s;
    counts[s]++;
  }

  // Pass 2 — index-permutation layer: union-find over the pass-1 slots.
  // sigma commutes with every symbol relabel, so the image slot of a
  // whole orbit equals the image slot of its representative: the loop is
  // #slots x #sigma applications, not N x #sigma.
  if (!index_gens.empty() && reps.size() > 1) {
    UnionFind uf(reps.size());
    Label z;
    for (std::uint32_t i = 0; i < reps.size(); ++i) {
      backend.label_into(reps[i], x);
      for (const OrbitAutomorphism& a : index_gens) {
        a.index_perm.apply_into(x, y);
        std::uint64_t image = kNoNode;
        if (relabels.canonical) {
          if (canonicalize(relabels, y, z, map_scratch)) {
            image = backend.try_node(z);
          }
        } else {
          image = backend.try_node(y);
        }
        IPG_CONTRACT(image != kNoNode);
        if (image == kNoNode) continue;  // drop the merge, stay sound
        uf.unite(i, out.orbit_of[as_size(image)]);
      }
    }
    // Collapse: renumber classes in ascending order of their minimum
    // representative (class roots are minimum slots by construction).
    std::vector<std::uint32_t> renumber(reps.size(), kNoSlot);
    std::vector<std::uint64_t> final_reps;
    std::vector<std::uint64_t> final_counts;
    for (std::uint32_t i = 0; i < reps.size(); ++i) {
      const std::uint32_t root = uf.find(i);
      if (renumber[root] == kNoSlot) {
        renumber[root] = static_cast<std::uint32_t>(final_reps.size());
        final_reps.push_back(reps[as_size(root)]);
        final_counts.push_back(0);
      }
      renumber[i] = renumber[root];
      final_counts[renumber[root]] += counts[i];
    }
    for (std::uint64_t u = 0; u < n; ++u) {
      out.orbit_of[as_size(u)] = renumber[out.orbit_of[as_size(u)]];
    }
    reps = std::move(final_reps);
    counts = std::move(final_counts);
  }

  out.representatives = std::move(reps);
  out.multiplicity = std::move(counts);
  if (relabels.canonical) {
    out.generators = std::move(relabels.gens);
  }
  out.generators.insert(out.generators.end(),
                        std::make_move_iterator(index_gens.begin()),
                        std::make_move_iterator(index_gens.end()));
  IPG_AUDIT(orbit_partition_consistent(out));
  return out;
}

}  // namespace

void OrbitAutomorphism::apply_into(const Label& x, Label& out) const {
  if (kind == Kind::kSymbolRelabel) {
    out.resize(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) out[i] = symbol_map[x[i]];
  } else {
    index_perm.apply_into(x, out);
  }
}

double OrbitQuotient::compression() const noexcept {
  return representatives.empty()
             ? 1.0
             : static_cast<double>(num_nodes) /
                   static_cast<double>(representatives.size());
}

OrbitQuotient OrbitQuotient::single_orbit(std::uint64_t n) {
  OrbitQuotient q;
  q.num_nodes = n;
  if (n > 0) {
    q.representatives = {0};
    q.multiplicity = {n};
  }
  return q;
}

OrbitQuotient compute_orbit_quotient(const IPGraph& g, const SuperIPSpec& spec,
                                     const OrbitOptions& opts) {
  const MaterializedBackend backend{&g};
  OrbitQuotient q = build_quotient(backend, spec, opts);
#ifdef IPG_CONTRACTS_ACTIVE
  for (const OrbitAutomorphism& a : q.generators) {
    IPG_AUDIT(automorphism_arc_preserving(g, a, opts.audit_samples,
                                          0x9e3779b97f4a7c15ull));
  }
#endif
  return q;
}

OrbitQuotient compute_orbit_quotient(const net::ImplicitSuperIPTopology& topo,
                                     const OrbitOptions& opts) {
  const ImplicitBackend backend{&topo.ranking()};
  OrbitQuotient q = build_quotient(backend, topo.spec(), opts);
#ifdef IPG_CONTRACTS_ACTIVE
  for (const OrbitAutomorphism& a : q.generators) {
    IPG_AUDIT(automorphism_arc_preserving(topo, a, opts.audit_samples,
                                          0x9e3779b97f4a7c15ull));
  }
#endif
  return q;
}

ImplicitOrbitMapper::ImplicitOrbitMapper(
    const net::ImplicitSuperIPTopology& topo)
    : topo_(&topo) {
  const ImplicitBackend backend{&topo.ranking()};
  const auto try_node = [&backend](const Label& x) {
    return backend.try_node(x);
  };
  RelabelFamily fam = certify_relabels(topo.spec(), try_node);
  canonicalizes_ = fam.canonical;
  symmetric_ = fam.symmetric;
  m_ = fam.m;
  anchor_ = std::move(fam.anchor);
}

std::uint64_t ImplicitOrbitMapper::canonical_rank(std::uint64_t r) const {
  if (!canonicalizes_) return r;
  RelabelFamily fam;
  fam.canonical = true;
  fam.symmetric = symmetric_;
  fam.m = m_;
  fam.anchor = anchor_;
  Label x, y;
  std::vector<std::uint8_t> map;
  topo_->ranking().unrank_into(r, x);
  if (!canonicalize(fam, x, y, map)) {
    IPG_CONTRACT(false && "implicit orbit mapper: rank fails to anchor");
    return r;
  }
  const std::uint64_t canon = topo_->ranking().try_rank(y);
  IPG_CONTRACT(canon != SuperRanking::kInvalidRank);
  return canon == SuperRanking::kInvalidRank ? r : canon;
}

OrbitQuotient module_orbit_quotient(const OrbitQuotient& node_orbits,
                                    std::span<const std::uint32_t> module_of,
                                    std::uint32_t num_modules) {
  IPG_CONTRACT(node_orbits.orbit_of.size() == node_orbits.num_nodes);
  IPG_CONTRACT(module_of.size() == node_orbits.num_nodes);
  OrbitQuotient out;
  out.num_nodes = num_modules;
  if (num_modules == 0) return out;

  // Certified automorphisms map modules onto modules (the builder was
  // asked for module-preserving generators), so two modules sharing a
  // node orbit are automorphism images of each other: union every node's
  // module with its orbit representative's module.
  UnionFind uf(num_modules);
  for (std::uint64_t u = 0; u < node_orbits.num_nodes; ++u) {
    const std::uint64_t rep =
        node_orbits.representatives[node_orbits.orbit_of[as_size(u)]];
    uf.unite(module_of[as_size(u)], module_of[as_size(rep)]);
  }

  out.orbit_of.assign(num_modules, 0);
  for (std::uint32_t mod = 0; mod < num_modules; ++mod) {
    const std::uint32_t root = uf.find(mod);
    if (root == mod) {
      out.orbit_of[mod] = static_cast<std::uint32_t>(out.representatives.size());
      out.representatives.push_back(mod);
      out.multiplicity.push_back(0);
    } else {
      out.orbit_of[mod] = out.orbit_of[root];  // root < mod: already placed
    }
    out.multiplicity[out.orbit_of[mod]]++;
  }
  IPG_AUDIT(orbit_partition_consistent(out));
  return out;
}

bool orbit_partition_consistent(const OrbitQuotient& q) {
  if (q.representatives.size() != q.multiplicity.size()) return false;
  std::uint64_t total = 0;
  std::uint64_t prev_rep = 0;
  for (std::size_t i = 0; i < q.representatives.size(); ++i) {
    const std::uint64_t rep = q.representatives[i];
    if (rep >= q.num_nodes) return false;
    if (i > 0 && rep <= prev_rep) return false;
    prev_rep = rep;
    if (q.multiplicity[i] == 0) return false;
    total += q.multiplicity[i];
  }
  if (total != q.num_nodes) return false;
  if (q.orbit_of.empty()) {
    // Compressed form: only the (caller-asserted) 1-orbit quotient and the
    // empty quotient may omit the per-node map.
    return q.representatives.size() <= 1;
  }
  if (q.orbit_of.size() != q.num_nodes) return false;
  std::vector<std::uint64_t> counts(q.representatives.size(), 0);
  for (std::uint64_t u = 0; u < q.num_nodes; ++u) {
    const std::uint32_t o = q.orbit_of[as_size(u)];
    if (o >= q.representatives.size()) return false;
    counts[o]++;
  }
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] != q.multiplicity[i]) return false;
    const std::uint64_t rep = q.representatives[i];
    if (q.orbit_of[as_size(rep)] != i) return false;
  }
  return true;
}

bool automorphism_arc_preserving(const IPGraph& g, const OrbitAutomorphism& a,
                                 int samples, std::uint64_t seed) {
  const Node n = g.num_nodes();
  if (n == 0) return true;
  Xoshiro256 rng(seed);
  Label x, y;
  std::vector<Node> mapped, expected;
  for (int s = 0; s < samples; ++s) {
    const Node u = static_cast<Node>(rng.below(n));
    g.label_into(u, x);
    a.apply_into(x, y);
    const Node pu = g.node_of(y);
    if (pu == kInvalidIPNode) return false;
    mapped.clear();
    for (const Node v : g.graph.neighbors(u)) {
      g.label_into(v, x);
      a.apply_into(x, y);
      const Node pv = g.node_of(y);
      if (pv == kInvalidIPNode) return false;
      mapped.push_back(pv);
    }
    std::sort(mapped.begin(), mapped.end());
    const auto image_arcs = g.graph.neighbors(pu);
    expected.assign(image_arcs.begin(), image_arcs.end());
    std::sort(expected.begin(), expected.end());
    if (mapped != expected) return false;
  }
  return true;
}

bool automorphism_arc_preserving(const net::ImplicitSuperIPTopology& topo,
                                 const OrbitAutomorphism& a, int samples,
                                 std::uint64_t seed) {
  const std::uint64_t n = topo.num_nodes();
  if (n == 0) return true;
  Xoshiro256 rng(seed);
  Label x, y;
  std::vector<net::TopoArc> arcs;
  std::vector<std::uint64_t> mapped, expected;
  for (int s = 0; s < samples; ++s) {
    const std::uint64_t u = rng.below(n);
    topo.label_into(u, x);
    a.apply_into(x, y);
    const std::uint64_t pu = topo.node_of(y);
    if (pu == net::kInvalidNodeId) return false;
    mapped.clear();
    topo.neighbors(u, arcs);
    for (const net::TopoArc& arc : arcs) {
      topo.label_into(arc.to, x);
      a.apply_into(x, y);
      const std::uint64_t pv = topo.node_of(y);
      if (pv == net::kInvalidNodeId) return false;
      mapped.push_back(pv);
    }
    std::sort(mapped.begin(), mapped.end());
    expected.clear();
    topo.neighbors(pu, arcs);
    for (const net::TopoArc& arc : arcs) expected.push_back(arc.to);
    std::sort(expected.begin(), expected.end());
    if (mapped != expected) return false;
  }
  return true;
}

DistanceSummary orbit_folded_distance_summary(const Graph& g,
                                              const OrbitQuotient& q,
                                              const ExecPolicy& exec,
                                              int num_shards) {
  const Node n = g.num_nodes();
  IPG_CONTRACT(q.num_nodes == n);
  if (n == 0 || q.representatives.empty()) {
    return finish_distance_summary(DistanceAccumulator{}, 0, n);
  }

  // Group representatives by multiplicity so each group is one weighted
  // sweep. std::map iterates in ascending multiplicity and representative
  // ids stay ascending inside a group — a merge order that depends only on
  // the quotient, never on threads or shards.
  std::map<std::uint64_t, std::vector<Node>> groups;
  for (std::size_t i = 0; i < q.representatives.size(); ++i) {
    groups[q.multiplicity[i]].push_back(
        narrow_cast<Node>(q.representatives[i]));
  }

  DistanceAccumulator merged;
  for (const auto& [mult, reps] : groups) {
    DistanceAccumulator acc;
    if (num_shards > 1) {
      acc = accumulator_from_summary(sharded_distance_summary(
          g, reps, shard::RankRangePartition(n, num_shards), exec));
    } else if (reps.size() < kScalarSweepCutover) {
      BfsScratch scratch(n);
      for (const Node rep : reps) acc.add(scratch.run(g, rep));
    } else {
      acc = accumulator_from_summary(batched_distance_summary(g, reps, exec));
    }
    merged.merge_scaled(acc, mult);
  }
  return finish_distance_summary(std::move(merged), n, n);
}

}  // namespace ipg
