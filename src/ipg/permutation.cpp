#include "ipg/permutation.hpp"

#include <cassert>
#include <numeric>

#include "util/narrow.hpp"

namespace ipg {

Permutation::Permutation(std::vector<std::uint8_t> one_line) : p_(std::move(one_line)) {
#ifndef NDEBUG
  std::vector<bool> seen(p_.size(), false);
  for (const std::uint8_t v : p_) {
    assert(v < p_.size() && !seen[v] && "not a permutation");
    seen[v] = true;
  }
#endif
}

Permutation Permutation::identity(int k) {
  std::vector<std::uint8_t> p(as_size(k));
  std::iota(p.begin(), p.end(), std::uint8_t{0});
  return Permutation(std::move(p));
}

Permutation Permutation::transposition(int k, int i, int j) {
  assert(i >= 0 && j >= 0 && i < k && j < k && i != j);
  Permutation out = identity(k);
  std::swap(out.p_[as_size(i)], out.p_[as_size(j)]);
  return out;
}

Permutation Permutation::rotate_left(int k, int s) {
  assert(k > 0);
  s = ((s % k) + k) % k;
  std::vector<std::uint8_t> p(as_size(k));
  for (int i = 0; i < k; ++i) p[as_size(i)] = static_cast<std::uint8_t>((i + s) % k);
  return Permutation(std::move(p));
}

Permutation Permutation::rotate_right(int k, int s) { return rotate_left(k, -s); }

Permutation Permutation::flip_prefix(int k, int prefix) {
  assert(prefix >= 1 && prefix <= k);
  Permutation out = identity(k);
  for (int i = 0; i < prefix; ++i) {
    out.p_[as_size(i)] = static_cast<std::uint8_t>(prefix - 1 - i);
  }
  return out;
}

Permutation Permutation::from_cycles(
    int k, std::initializer_list<std::initializer_list<int>> cycles) {
  // One-line p with out[i] = in[p[i]]. A cycle (a b c) moves the symbol at
  // position a to position b, b to c, c to a; equivalently the new content
  // of position b comes from position a, so p[b] = a.
  Permutation out = identity(k);
  for (const auto& cycle : cycles) {
    const int len = static_cast<int>(cycle.size());
    if (len < 2) continue;
    std::vector<int> c(cycle);
    for (int i = 0; i < len; ++i) {
      const int from = c[as_size(i)];
      const int to = c[as_size((i + 1) % len)];
      assert(from >= 0 && from < k && to >= 0 && to < k);
      out.p_[as_size(to)] = static_cast<std::uint8_t>(from);
    }
  }
  return out;
}

bool Permutation::is_identity() const noexcept {
  for (int i = 0; i < size(); ++i) {
    if (p_[as_size(i)] != i) return false;
  }
  return true;
}

Label Permutation::apply(const Label& x) const {
  Label out;
  apply_into(x, out);
  return out;
}

void Permutation::apply_into(const Label& x, Label& out) const {
  assert(static_cast<int>(x.size()) == size());
  out.resize(x.size());
  for (int i = 0; i < size(); ++i) out[as_size(i)] = x[p_[as_size(i)]];
}

Permutation Permutation::then(const Permutation& next) const {
  // next.apply(this->apply(x))[i] = this->apply(x)[next.p_[i]] = x[p_[next.p_[i]]].
  assert(size() == next.size());
  std::vector<std::uint8_t> q(p_.size());
  for (int i = 0; i < size(); ++i) q[as_size(i)] = p_[next.p_[as_size(i)]];
  return Permutation(std::move(q));
}

Permutation Permutation::inverse() const {
  std::vector<std::uint8_t> q(p_.size());
  for (int i = 0; i < size(); ++i) q[p_[as_size(i)]] = static_cast<std::uint8_t>(i);
  return Permutation(std::move(q));
}

Permutation Permutation::expand_blocks(int m) const {
  std::vector<std::uint8_t> q(p_.size() * as_size(m));
  for (int block = 0; block < size(); ++block) {
    for (int j = 0; j < m; ++j) {
      q[as_size(block * m + j)] = static_cast<std::uint8_t>(p_[as_size(block)] * m + j);
    }
  }
  return Permutation(std::move(q));
}

Permutation Permutation::embed(int total, int at) const {
  assert(at >= 0 && at + size() <= total);
  Permutation out = identity(total);
  for (int i = 0; i < size(); ++i) {
    out.p_[as_size(at + i)] = static_cast<std::uint8_t>(at + p_[as_size(i)]);
  }
  return out;
}

std::string Permutation::to_cycle_string() const {
  std::string out;
  std::vector<bool> seen(p_.size(), false);
  for (int start = 0; start < size(); ++start) {
    if (seen[as_size(start)] || p_[as_size(start)] == start) continue;
    out += '(';
    int i = start;
    bool first = true;
    // Follow the orbit of positions: position i receives from p_[i].
    do {
      if (!first) out += ' ';
      out += std::to_string(i);
      seen[as_size(i)] = true;
      i = p_[as_size(i)];
      first = false;
    } while (i != start);
    out += ')';
  }
  if (out.empty()) out = "()";
  return out;
}

}  // namespace ipg
