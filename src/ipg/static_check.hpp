#pragma once
// Compile-time paper contracts and runtime audit macros (layer 3 of the
// static-analysis pass; docs/MODEL.md §10).
//
// Two parts:
//
//  * constexpr permutation kernels mirroring ipg::Permutation, plus a
//    static_assert suite proving the generator algebra the routing layer
//    assumes — the paper's T(i) transpositions and F(i) flips are
//    involutions, L∘R = id on every group count, nucleus and
//    super-generators acting on disjoint index sets commute, and the
//    Theorem 4.1 schedule length t equals l - 1 for the transposition,
//    cyclic-shift and flip super-generator sets. The asserts fire at
//    compile time in every build configuration, so a generator-algebra
//    regression cannot even produce a binary.
//
//  * IPG_CONTRACT / IPG_AUDIT macros — active in Debug builds and under
//    -DIPG_AUDIT=ON — backing Graph::validate_csr(), the label/codec
//    round-trip audit in the IP-graph builders, the transpose-cache
//    coherence audit and the FaultSet consistency audit in
//    simulate_with_faults.

#include <array>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

// IPG_CONTRACT(cond): cheap O(1) precondition/invariant.
// IPG_AUDIT(cond): structural audit, linear (or worse) in the audited
// object — the argument expression is dropped entirely when contracts are
// off, so audit helpers may be defined under #ifdef IPG_CONTRACTS_ACTIVE.
#if defined(IPG_AUDIT_ENABLED) || !defined(NDEBUG)
#define IPG_CONTRACTS_ACTIVE 1
#define IPG_CONTRACT(cond)                                            \
  ((cond) ? static_cast<void>(0)                                      \
          : ::ipg::contract::fail("contract", #cond, __FILE__, __LINE__))
#define IPG_AUDIT(cond)                                               \
  ((cond) ? static_cast<void>(0)                                      \
          : ::ipg::contract::fail("audit", #cond, __FILE__, __LINE__))
#else
#define IPG_CONTRACT(cond) static_cast<void>(0)
#define IPG_AUDIT(cond) static_cast<void>(0)
#endif

namespace ipg::contract {

[[noreturn]] inline void fail(const char* kind, const char* expr,
                              const char* file, int line) {
  std::fprintf(stderr, "ipg %s violated at %s:%d: %s\n", kind, file, line,
               expr);
  std::abort();
}

}  // namespace ipg::contract

namespace ipg::static_check {

// ---------------------------------------------------------------------------
// constexpr permutation kernels. One-line notation with the library's
// convention (permutation.hpp): applying p to a label X gives
// (Xp)[i] = X[p[i]].

template <int K>
using CPerm = std::array<std::uint8_t, static_cast<std::size_t>(K)>;

constexpr int factorial(int n) {
  int f = 1;
  for (int i = 2; i <= n; ++i) f *= i;
  return f;
}

template <int K>
constexpr CPerm<K> identity() {
  CPerm<K> p{};
  for (int i = 0; i < K; ++i) p[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  return p;
}

/// Transposition (i j) — the paper's T generators are (1, i+1).
template <int K>
constexpr CPerm<K> transposition(int i, int j) {
  CPerm<K> p = identity<K>();
  const std::uint8_t t = p[static_cast<std::size_t>(i)];
  p[static_cast<std::size_t>(i)] = p[static_cast<std::size_t>(j)];
  p[static_cast<std::size_t>(j)] = t;
  return p;
}

/// Cyclic left rotation by s (the paper's L generator for s = 1).
template <int K>
constexpr CPerm<K> rotate_left(int s) {
  s = ((s % K) + K) % K;
  CPerm<K> p{};
  for (int i = 0; i < K; ++i) {
    p[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>((i + s) % K);
  }
  return p;
}

/// Cyclic right rotation by s (the paper's R generator, L's inverse).
template <int K>
constexpr CPerm<K> rotate_right(int s) {
  return rotate_left<K>(-s);
}

/// Reversal of the first `prefix` positions (the paper's F generators).
template <int K>
constexpr CPerm<K> flip_prefix(int prefix) {
  CPerm<K> p = identity<K>();
  for (int i = 0; i < prefix; ++i) {
    p[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(prefix - 1 - i);
  }
  return p;
}

/// Composition matching Permutation::then: applying the result equals
/// applying `a` first, then `b`.
template <int K>
constexpr CPerm<K> then(const CPerm<K>& a, const CPerm<K>& b) {
  CPerm<K> q{};
  for (int i = 0; i < K; ++i) {
    q[static_cast<std::size_t>(i)] = a[b[static_cast<std::size_t>(i)]];
  }
  return q;
}

template <int K>
constexpr bool is_identity(const CPerm<K>& a) {
  for (int i = 0; i < K; ++i) {
    if (a[static_cast<std::size_t>(i)] != i) return false;
  }
  return true;
}

/// Block expansion matching Permutation::expand_blocks: an l-block
/// permutation lifted to l*m positions moving whole m-symbol blocks.
template <int L, int M>
constexpr CPerm<L * M> expand_blocks(const CPerm<L>& a) {
  CPerm<L * M> q{};
  for (int block = 0; block < L; ++block) {
    for (int j = 0; j < M; ++j) {
      q[static_cast<std::size_t>(block * M + j)] =
          static_cast<std::uint8_t>(a[static_cast<std::size_t>(block)] * M + j);
    }
  }
  return q;
}

/// Embedding matching Permutation::embed: a k-permutation placed at offset
/// `at` inside `Total` positions, identity elsewhere.
template <int Total, int K>
constexpr CPerm<Total> embed(const CPerm<K>& a, int at) {
  CPerm<Total> q = identity<Total>();
  for (int i = 0; i < K; ++i) {
    q[static_cast<std::size_t>(at + i)] =
        static_cast<std::uint8_t>(at + a[static_cast<std::size_t>(i)]);
  }
  return q;
}

/// Inverse permutation: then(a, inverse(a)) == identity.
template <int K>
constexpr CPerm<K> inverse(const CPerm<K>& a) {
  CPerm<K> q{};
  for (int i = 0; i < K; ++i) {
    q[a[static_cast<std::size_t>(i)]] = static_cast<std::uint8_t>(i);
  }
  return q;
}

/// Conjugation matching the orbit certifier (analysis/orbit.cpp): the
/// action of generator `g` seen through the candidate automorphism
/// x -> x∘sigma is sigma^-1 ∘ g ∘ sigma in the library's composition
/// order. sigma is a certified automorphism exactly when this lands in
/// the generator set for every generator (plus seed membership).
template <int K>
constexpr CPerm<K> conjugate(const CPerm<K>& sigma, const CPerm<K>& g) {
  return then<K>(then<K>(inverse<K>(sigma), g), sigma);
}

/// Lexicographic unrank (inverse of rank_of): permutation number `r` of
/// 0..K-1, for exhaustive constexpr enumeration of small groups.
template <int K>
constexpr CPerm<K> unrank_perm(int r) {
  std::array<std::uint8_t, static_cast<std::size_t>(K)> pool{};
  for (int i = 0; i < K; ++i) pool[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  CPerm<K> p{};
  for (int i = 0; i < K; ++i) {
    const int radix = factorial(K - 1 - i);
    const int pick = r / radix;
    r %= radix;
    p[static_cast<std::size_t>(i)] = pool[static_cast<std::size_t>(pick)];
    for (int j = pick; j + 1 < K - i; ++j) {
      pool[static_cast<std::size_t>(j)] = pool[static_cast<std::size_t>(j + 1)];
    }
  }
  return p;
}

/// Lexicographic rank of a permutation of 0..K-1 (Lehmer code); bijective
/// onto [0, K!).
template <int K>
constexpr int rank_of(const CPerm<K>& a) {
  int r = 0;
  for (int i = 0; i < K; ++i) {
    int smaller = 0;
    for (int j = i + 1; j < K; ++j) {
      if (a[static_cast<std::size_t>(j)] < a[static_cast<std::size_t>(i)]) ++smaller;
    }
    r = r * (K - i) + smaller;
  }
  return r;
}

// ---------------------------------------------------------------------------
// Theorem 4.1 kernel: exact BFS over (block arrangement, visited set)
// computing t — the minimum number of super-generator applications that
// brings every super-symbol to the leftmost position at least once. This
// mirrors ipg::compute_t (schedule.cpp) but runs in constexpr evaluation,
// so the closed form t = l - 1 is checked by the compiler.

template <int L, int NG>
constexpr int min_visit_all_length(
    const std::array<CPerm<L>, static_cast<std::size_t>(NG)>& gens,
                                   int num_gens) {
  constexpr int kFact = factorial(L);
  constexpr int kStates = kFact << L;
  struct State {
    CPerm<L> arr{};
    std::uint16_t visited = 0;
    std::int16_t dist = 0;
  };
  std::array<State, static_cast<std::size_t>(kStates)> queue{};
  std::array<bool, static_cast<std::size_t>(kStates)> seen{};
  const std::uint16_t full = static_cast<std::uint16_t>((1u << L) - 1u);

  int head = 0;
  int tail = 0;
  queue[static_cast<std::size_t>(tail++)] =
      State{identity<L>(), std::uint16_t{1}, std::int16_t{0}};
  seen[static_cast<std::size_t>(rank_of<L>(identity<L>()) * (1 << L) + 1)] = true;

  while (head < tail) {
    const State s = queue[static_cast<std::size_t>(head++)];
    if (s.visited == full) return s.dist;
    for (int g = 0; g < num_gens; ++g) {
      CPerm<L> nxt{};
      for (int i = 0; i < L; ++i) {
        nxt[static_cast<std::size_t>(i)] =
            s.arr[gens[static_cast<std::size_t>(g)][static_cast<std::size_t>(i)]];
      }
      const std::uint16_t nv = static_cast<std::uint16_t>(
          s.visited | (1u << nxt[0]));
      const int idx = rank_of<L>(nxt) * (1 << L) + nv;
      if (!seen[static_cast<std::size_t>(idx)]) {
        seen[static_cast<std::size_t>(idx)] = true;
        queue[static_cast<std::size_t>(tail++)] =
            State{nxt, nv, static_cast<std::int16_t>(s.dist + 1)};
      }
    }
  }
  return -1;  // some block can never reach the front: not a super-IP spec
}

/// HSN super-generators: transpositions (1, i)_m, i = 2..l.
template <int L>
constexpr int t_transpositions() {
  std::array<CPerm<L>, static_cast<std::size_t>(L)> gens{};
  for (int i = 1; i < L; ++i) {
    gens[static_cast<std::size_t>(i - 1)] = transposition<L>(0, i);
  }
  return min_visit_all_length<L, L>(gens, L - 1);
}

/// Ring cyclic-shift super-generators {L, R}.
template <int L>
constexpr int t_ring_shifts() {
  const std::array<CPerm<L>, 2> gens{rotate_left<L>(1), rotate_right<L>(1)};
  return min_visit_all_length<L, 2>(gens, 2);
}

/// Super-flip generators F2..Fl.
template <int L>
constexpr int t_flips() {
  std::array<CPerm<L>, static_cast<std::size_t>(L)> gens{};
  for (int i = 2; i <= L; ++i) {
    gens[static_cast<std::size_t>(i - 2)] = flip_prefix<L>(i);
  }
  return min_visit_all_length<L, L>(gens, L - 1);
}

// ---------------------------------------------------------------------------
// The static_assert suite.

namespace detail {

/// Every transposition (0 i) composed with itself is the identity.
template <int K>
constexpr bool transpositions_are_involutions() {
  for (int i = 1; i < K; ++i) {
    const CPerm<K> t = transposition<K>(0, i);
    if (!is_identity<K>(then<K>(t, t))) return false;
  }
  return true;
}

/// Every prefix flip F2..FK composed with itself is the identity.
template <int K>
constexpr bool flips_are_involutions() {
  for (int i = 2; i <= K; ++i) {
    const CPerm<K> f = flip_prefix<K>(i);
    if (!is_identity<K>(then<K>(f, f))) return false;
  }
  return true;
}

/// L∘R = R∘L = id for every shift amount on K groups.
template <int K>
constexpr bool shifts_invert() {
  for (int s = 0; s < K; ++s) {
    if (!is_identity<K>(then<K>(rotate_left<K>(s), rotate_right<K>(s)))) {
      return false;
    }
    if (!is_identity<K>(then<K>(rotate_right<K>(s), rotate_left<K>(s)))) {
      return false;
    }
  }
  return true;
}

/// Generators acting on disjoint index sets commute: a nucleus generator
/// embedded at block 0 against super-generators that only move blocks
/// 1..L-1, and nucleus generators embedded at distinct blocks.
template <int L, int M>
constexpr bool disjoint_generators_commute() {
  constexpr int N = L * M;
  const CPerm<N> nucleus0 = embed<N, M>(transposition<M>(0, 1), 0);
  const CPerm<N> nucleus1 = embed<N, M>(rotate_left<M>(1), M);
  const CPerm<N> super12 = expand_blocks<L, M>(transposition<L>(1, 2));
  if (then<N>(nucleus0, super12) != then<N>(super12, nucleus0)) return false;
  if (then<N>(nucleus0, nucleus1) != then<N>(nucleus1, nucleus0)) return false;
  return true;
}

/// then(a, inverse(a)) and then(inverse(a), a) are the identity for every
/// permutation of K positions.
template <int K>
constexpr bool inverses_roundtrip() {
  for (int r = 0; r < factorial(K); ++r) {
    const CPerm<K> p = unrank_perm<K>(r);
    if (!is_identity<K>(then<K>(p, inverse<K>(p)))) return false;
    if (!is_identity<K>(then<K>(inverse<K>(p), p))) return false;
  }
  return true;
}

/// The orbit certifier's normalizer premise for HSN: every block
/// permutation fixing position 0 conjugates the transposition set
/// {T(0,i) : i >= 1} into itself — so on HSN(l, ·) all (l-1)! such block
/// permutations certify as automorphisms (analysis/orbit.cpp).
template <int K>
constexpr bool stabilizer_normalizes_transpositions() {
  for (int r = 0; r < factorial(K); ++r) {
    const CPerm<K> sigma = unrank_perm<K>(r);
    if (sigma[0] != 0) continue;  // must fix the nucleus block position
    for (int i = 1; i < K; ++i) {
      const CPerm<K> h = conjugate<K>(sigma, transposition<K>(0, i));
      bool in_set = false;
      for (int j = 1; j < K; ++j) {
        if (h == transposition<K>(0, j)) in_set = true;
      }
      if (!in_set) return false;
    }
  }
  return true;
}

/// The ring-CN premise: reversal conjugates L into R and R into L (so the
/// reflection certifies on ring-CN), and every rotation centralizes both
/// (so all K rotations certify).
template <int K>
constexpr bool reflection_and_rotations_normalize_shifts() {
  CPerm<K> rev{};
  for (int i = 0; i < K; ++i) {
    rev[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(K - 1 - i);
  }
  if (conjugate<K>(rev, rotate_left<K>(1)) != rotate_right<K>(1)) return false;
  if (conjugate<K>(rev, rotate_right<K>(1)) != rotate_left<K>(1)) return false;
  for (int s = 0; s < K; ++s) {
    const CPerm<K> rot = rotate_left<K>(s);
    if (conjugate<K>(rot, rotate_left<K>(1)) != rotate_left<K>(1)) return false;
    if (conjugate<K>(rot, rotate_right<K>(1)) != rotate_right<K>(1)) {
      return false;
    }
  }
  return true;
}

}  // namespace detail

static_assert(detail::inverses_roundtrip<3>() && detail::inverses_roundtrip<4>() &&
                  detail::inverses_roundtrip<5>(),
              "inverse() must invert then() for every permutation");

static_assert(detail::stabilizer_normalizes_transpositions<3>() &&
                  detail::stabilizer_normalizes_transpositions<4>() &&
                  detail::stabilizer_normalizes_transpositions<5>(),
              "orbit certification premise: block permutations fixing block "
              "0 must normalize the HSN transposition super-generators");

static_assert(detail::reflection_and_rotations_normalize_shifts<3>() &&
                  detail::reflection_and_rotations_normalize_shifts<4>() &&
                  detail::reflection_and_rotations_normalize_shifts<6>(),
              "orbit certification premise: reversal swaps L and R and "
              "rotations centralize them on ring-CN super-generators");

static_assert(detail::transpositions_are_involutions<3>() &&
                  detail::transpositions_are_involutions<5>() &&
                  detail::transpositions_are_involutions<8>(),
              "paper Section 3.2: T generators must be involutions");

static_assert(detail::flips_are_involutions<3>() &&
                  detail::flips_are_involutions<5>() &&
                  detail::flips_are_involutions<8>(),
              "paper Section 3.4: F generators must be involutions");

static_assert(detail::shifts_invert<2>() && detail::shifts_invert<3>() &&
                  detail::shifts_invert<4>() && detail::shifts_invert<5>() &&
                  detail::shifts_invert<6>() && detail::shifts_invert<7>() &&
                  detail::shifts_invert<8>(),
              "paper Section 3.3: L and R must be mutual inverses on every "
              "group count");

static_assert(detail::disjoint_generators_commute<3, 2>() &&
                  detail::disjoint_generators_commute<3, 4>() &&
                  detail::disjoint_generators_commute<4, 3>(),
              "generators on disjoint index sets must commute");

static_assert(t_transpositions<2>() == 1 && t_transpositions<3>() == 2 &&
                  t_transpositions<4>() == 3 && t_transpositions<5>() == 4,
              "Theorem 4.1: t = l - 1 for HSN transposition super-generators");

static_assert(t_ring_shifts<2>() == 1 && t_ring_shifts<3>() == 2 &&
                  t_ring_shifts<4>() == 3 && t_ring_shifts<5>() == 4,
              "Theorem 4.1: t = l - 1 for ring cyclic-shift super-generators");

static_assert(t_flips<2>() == 1 && t_flips<3>() == 2 && t_flips<4>() == 3 &&
                  t_flips<5>() == 4,
              "Theorem 4.1: t = l - 1 for super-flip generators");

}  // namespace ipg::static_check
