#include "ipg/spec.hpp"

#include <algorithm>
#include <cassert>
#include "util/narrow.hpp"

namespace ipg {

bool IPGraphSpec::inverse_closed() const {
  for (const Generator& g : generators) {
    const Permutation inv = g.perm.inverse();
    const bool found =
        std::any_of(generators.begin(), generators.end(),
                    [&](const Generator& h) { return h.perm == inv; });
    if (!found) return false;
  }
  return true;
}

std::vector<int> IPGraphSpec::super_generator_indices() const {
  std::vector<int> out;
  for (int i = 0; i < static_cast<int>(generators.size()); ++i) {
    if (generators[as_size(i)].is_super) out.push_back(i);
  }
  return out;
}

std::vector<int> IPGraphSpec::nucleus_generator_indices() const {
  std::vector<int> out;
  for (int i = 0; i < static_cast<int>(generators.size()); ++i) {
    if (!generators[as_size(i)].is_super) out.push_back(i);
  }
  return out;
}

bool IPGraphSpec::valid() const {
  if (seed.empty()) return false;
  for (const Generator& g : generators) {
    if (g.perm.size() != label_length()) return false;
    if (g.perm.is_identity()) return false;
  }
  for (std::size_t i = 0; i < generators.size(); ++i) {
    for (std::size_t j = i + 1; j < generators.size(); ++j) {
      if (generators[i].name == generators[j].name) return false;
    }
  }
  return true;
}

}  // namespace ipg
