#include "ipg/families.hpp"

#include <cassert>
#include <stdexcept>
#include <unordered_set>

#include "graph/builder.hpp"
#include "util/narrow.hpp"

namespace ipg {

// --------------------------------------------------------------------------
// Super-generator sets.

std::vector<Generator> transposition_super_gens(int l) {
  assert(l >= 2);
  std::vector<Generator> out;
  for (int i = 1; i < l; ++i) {
    out.push_back(Generator{"T" + std::to_string(i + 1),
                            Permutation::transposition(l, 0, i), true});
  }
  return out;
}

std::vector<Generator> ring_shift_super_gens(int l) {
  assert(l >= 2);
  std::vector<Generator> out;
  out.push_back(Generator{"L", Permutation::rotate_left(l, 1), true});
  if (l > 2) {
    out.push_back(Generator{"R", Permutation::rotate_right(l, 1), true});
  }
  return out;
}

std::vector<Generator> complete_shift_super_gens(int l) {
  assert(l >= 2);
  std::vector<Generator> out;
  for (int s = 1; s < l; ++s) {
    out.push_back(Generator{"L" + std::to_string(s),
                            Permutation::rotate_left(l, s), true});
  }
  return out;
}

std::vector<Generator> directed_shift_super_gens(int l) {
  assert(l >= 2);
  return {Generator{"L", Permutation::rotate_left(l, 1), true}};
}

std::vector<Generator> flip_super_gens(int l) {
  assert(l >= 2);
  std::vector<Generator> out;
  for (int i = 2; i <= l; ++i) {
    out.push_back(Generator{"F" + std::to_string(i),
                            Permutation::flip_prefix(l, i), true});
  }
  return out;
}

// --------------------------------------------------------------------------
// Nucleus specs.

namespace {

Label iota_label(int m) {
  std::vector<int> symbols(as_size(m));
  for (int i = 0; i < m; ++i) symbols[as_size(i)] = i + 1;
  return make_label(symbols);
}

}  // namespace

IPGraphSpec hypercube_nucleus(int n) {
  assert(n >= 1);
  IPGraphSpec out;
  out.name = "Q" + std::to_string(n);
  out.seed = iota_label(2 * n);
  for (int i = 0; i < n; ++i) {
    out.generators.push_back(Generator{
        "X" + std::to_string(i + 1),
        Permutation::transposition(2 * n, 2 * i, 2 * i + 1), false});
  }
  return out;
}

IPGraphSpec folded_hypercube_nucleus(int n) {
  assert(n >= 2);
  IPGraphSpec out = hypercube_nucleus(n);
  out.name = "FQ" + std::to_string(n);
  // The complement generator swaps every pair at once.
  Permutation all = Permutation::identity(2 * n);
  for (int i = 0; i < n; ++i) {
    all = all.then(Permutation::transposition(2 * n, 2 * i, 2 * i + 1));
  }
  out.generators.push_back(Generator{"C", all, false});
  return out;
}

IPGraphSpec star_nucleus(int n) {
  assert(n >= 2);
  IPGraphSpec out;
  out.name = "S" + std::to_string(n);
  out.seed = iota_label(n);
  for (int i = 1; i < n; ++i) {
    out.generators.push_back(Generator{"pi" + std::to_string(i + 1),
                                       Permutation::transposition(n, 0, i),
                                       false});
  }
  return out;
}

IPGraphSpec pancake_nucleus(int n) {
  assert(n >= 2);
  IPGraphSpec out;
  out.name = "P" + std::to_string(n) + "(pancake)";
  out.seed = iota_label(n);
  for (int i = 2; i <= n; ++i) {
    out.generators.push_back(Generator{"F" + std::to_string(i),
                                       Permutation::flip_prefix(n, i), false});
  }
  return out;
}

IPGraphSpec bubble_sort_nucleus(int n) {
  assert(n >= 2);
  IPGraphSpec out;
  out.name = "B" + std::to_string(n);
  out.seed = iota_label(n);
  for (int i = 0; i + 1 < n; ++i) {
    out.generators.push_back(Generator{"b" + std::to_string(i + 1),
                                       Permutation::transposition(n, i, i + 1),
                                       false});
  }
  return out;
}

IPGraphSpec complete_nucleus(int r) {
  assert(r >= 2);
  IPGraphSpec out;
  out.name = "K" + std::to_string(r);
  out.seed = iota_label(r);
  for (int s = 1; s < r; ++s) {
    out.generators.push_back(
        Generator{"rot" + std::to_string(s), Permutation::rotate_left(r, s), false});
  }
  return out;
}

IPGraphSpec cycle_nucleus(int r) {
  assert(r >= 3);
  IPGraphSpec out;
  out.name = "C" + std::to_string(r);
  out.seed = iota_label(r);
  out.generators.push_back(Generator{"+1", Permutation::rotate_left(r, 1), false});
  out.generators.push_back(Generator{"-1", Permutation::rotate_right(r, 1), false});
  return out;
}

IPGraphSpec generalized_hypercube_nucleus(std::span<const int> radices) {
  assert(!radices.empty());
  int m = 0;
  for (const int r : radices) {
    assert(r >= 2);
    m += r;
  }
  IPGraphSpec out;
  out.name = "GH(";
  out.seed = iota_label(m);
  int offset = 0;
  for (std::size_t d = 0; d < radices.size(); ++d) {
    const int r = radices[d];
    out.name += (d ? "," : "") + std::to_string(r);
    for (int s = 1; s < r; ++s) {
      out.generators.push_back(Generator{
          "d" + std::to_string(d + 1) + "s" + std::to_string(s),
          Permutation::rotate_left(r, s).embed(m, offset), false});
    }
    offset += r;
  }
  out.name += ")";
  return out;
}

IPGraphSpec kary_ncube_nucleus(int k, int n) {
  assert(k >= 2 && n >= 1);
  const int m = k * n;
  IPGraphSpec out;
  out.name = std::to_string(k) + "-ary-" + std::to_string(n) + "-cube";
  out.seed = iota_label(m);
  for (int d = 0; d < n; ++d) {
    const int offset = d * k;
    out.generators.push_back(Generator{
        "d" + std::to_string(d + 1) + "+",
        Permutation::rotate_left(k, 1).embed(m, offset), false});
    if (k > 2) {
      out.generators.push_back(Generator{
          "d" + std::to_string(d + 1) + "-",
          Permutation::rotate_right(k, 1).embed(m, offset), false});
    }
  }
  return out;
}

IPGraphSpec rotator_nucleus(int n) {
  assert(n >= 2);
  IPGraphSpec out;
  out.name = "R" + std::to_string(n) + "(rotator)";
  out.seed = iota_label(n);
  for (int i = 2; i <= n; ++i) {
    out.generators.push_back(Generator{
        "r" + std::to_string(i), Permutation::rotate_left(i, 1).embed(n, 0),
        false});
  }
  return out;
}

// --------------------------------------------------------------------------
// Family assembly.

namespace {

SuperIPSpec assemble(std::string name, int l, const IPGraphSpec& nucleus,
                     std::vector<Generator> super_gens) {
  SuperIPSpec out;
  out.name = std::move(name);
  out.l = l;
  out.m = nucleus.label_length();
  out.nucleus_gens = nucleus.generators;
  out.super_gens = std::move(super_gens);
  // A hierarchical nucleus (e.g. an inner HSN) may reuse super-generator
  // names like "T2"; qualify nucleus names until unique so the lifted spec
  // stays valid at any nesting depth.
  std::unordered_set<std::string> used;
  for (const Generator& s : out.super_gens) used.insert(s.name);
  for (Generator& g : out.nucleus_gens) {
    g.is_super = false;
    while (used.contains(g.name)) g.name = "nuc:" + g.name;
    used.insert(g.name);
  }
  out.seed = repeat_label(nucleus.seed, l);
  if (!out.valid()) {
    throw std::invalid_argument("invalid super-IP assembly: " + out.name);
  }
  return out;
}

}  // namespace

SuperIPSpec make_hsn(int l, const IPGraphSpec& g) {
  return assemble("HSN(" + std::to_string(l) + "," + g.name + ")", l, g,
                  transposition_super_gens(l));
}

SuperIPSpec make_ring_cn(int l, const IPGraphSpec& g) {
  return assemble("ring-CN(" + std::to_string(l) + "," + g.name + ")", l, g,
                  ring_shift_super_gens(l));
}

SuperIPSpec make_complete_cn(int l, const IPGraphSpec& g) {
  return assemble("complete-CN(" + std::to_string(l) + "," + g.name + ")", l, g,
                  complete_shift_super_gens(l));
}

SuperIPSpec make_directed_cn(int l, const IPGraphSpec& g) {
  return assemble("directed-CN(" + std::to_string(l) + "," + g.name + ")", l, g,
                  directed_shift_super_gens(l));
}

SuperIPSpec make_super_flip(int l, const IPGraphSpec& g) {
  return assemble("SFN(" + std::to_string(l) + "," + g.name + ")", l, g,
                  flip_super_gens(l));
}

SuperIPSpec make_hcn(int n) {
  SuperIPSpec out = make_hsn(2, hypercube_nucleus(n));
  out.name = "HCN(" + std::to_string(n) + "," + std::to_string(n) + ")";
  return out;
}

SuperIPSpec make_hfn(int n) {
  SuperIPSpec out = make_hsn(2, folded_hypercube_nucleus(n));
  out.name = "HFN(" + std::to_string(n) + "," + std::to_string(n) + ")";
  return out;
}

IPGraphSpec make_rhsn(int depth, const IPGraphSpec& g) {
  assert(depth >= 0);
  IPGraphSpec current = g;
  for (int d = 0; d < depth; ++d) {
    SuperIPSpec level = make_hsn(2, current);
    level.name = "RHSN(" + std::to_string(d + 1) + "," + g.name + ")";
    current = level.to_ip_spec();
    current.name = level.name;
  }
  return current;
}

Graph add_hcn_diameter_links(const IPGraph& hcn, int n) {
  const int m = 2 * n;
  assert(hcn.spec.label_length() == 2 * m);
  GraphBuilder b(hcn.num_nodes());
  b.reserve(hcn.graph.num_arcs() + hcn.num_nodes());
  for (Node u = 0; u < hcn.num_nodes(); ++u) {
    for (const Node v : hcn.graph.neighbors(u)) b.add_arc(u, v);
  }
  Label x;
  for (Node u = 0; u < hcn.num_nodes(); ++u) {
    hcn.label_into(u, x);
    if (!std::equal(x.begin(), x.begin() + m, x.begin() + m)) continue;
    // Complement both halves: swap the two symbols of every pair.
    Label y(x);
    for (int p = 0; p + 1 < 2 * m; p += 2) std::swap(y[as_size(p)], y[as_size(p + 1)]);
    const Node v = hcn.node_of(y);
    assert(v != kInvalidIPNode);
    b.add_arc(u, v);  // the complement node also satisfies x==y, adding v->u
  }
  return std::move(b).build();
}

// --------------------------------------------------------------------------
// Direct tuple-space construction.

Node TupleNetwork::encode(std::span<const Node> tuple) const {
  assert(static_cast<int>(tuple.size()) == l);
  Node id = 0;
  for (const Node v : tuple) {
    assert(v < nucleus_size);
    id = id * nucleus_size + v;
  }
  return id;
}

std::vector<Node> TupleNetwork::decode(Node id) const {
  std::vector<Node> tuple(as_size(l));
  for (int i = l - 1; i >= 0; --i) {
    tuple[as_size(i)] = id % nucleus_size;
    id /= nucleus_size;
  }
  return tuple;
}

std::uint32_t TupleNetwork::module_of(Node id) const {
  // Module = the suffix (v_2 .. v_l): drop the leading coordinate.
  Node suffix = 0;
  const auto tuple = decode(id);
  for (int i = 1; i < l; ++i) suffix = suffix * nucleus_size + tuple[as_size(i)];
  return suffix;
}

std::uint32_t TupleNetwork::num_modules() const {
  std::uint32_t out = 1;
  for (int i = 1; i < l; ++i) out *= nucleus_size;
  return out;
}

TupleNetwork build_super_network_direct(const Graph& nucleus, int l,
                                        std::span<const Generator> super_gens) {
  assert(l >= 2);
  TupleNetwork out;
  out.nucleus_size = nucleus.num_nodes();
  out.l = l;

  std::uint64_t n = 1;
  for (int i = 0; i < l; ++i) {
    n *= nucleus.num_nodes();
    if (n > (1ull << 31)) throw std::length_error("tuple network too large");
  }

  GraphBuilder b(static_cast<Node>(n));
  const std::int64_t stride = static_cast<std::int64_t>(n / nucleus.num_nodes());
  std::vector<Node> tuple(as_size(l)), moved(as_size(l));
  for (Node u = 0; u < n; ++u) {
    // Decode inline (avoid per-node allocation).
    Node id = u;
    for (int i = l - 1; i >= 0; --i) {
      tuple[as_size(i)] = id % nucleus.num_nodes();
      id /= nucleus.num_nodes();
    }
    // Nucleus arcs on the leading coordinate (most significant digit).
    const Node head = tuple[0];
    for (const Node w : nucleus.neighbors(head)) {
      const std::int64_t v =
          static_cast<std::int64_t>(u) +
          (static_cast<std::int64_t>(w) - static_cast<std::int64_t>(head)) * stride;
      b.add_arc(u, static_cast<Node>(v));
    }
    // Super-generator arcs permute coordinates.
    for (const Generator& g : super_gens) {
      for (int p = 0; p < l; ++p) moved[as_size(p)] = tuple[g.perm[p]];
      b.add_arc(u, out.encode(moved));
    }
  }
  out.graph = std::move(b).build();
  return out;
}

}  // namespace ipg
