#include "ipg/schedule.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include "util/narrow.hpp"

namespace ipg {

namespace {

constexpr std::uint32_t kFactorial[9] = {1, 1, 2, 6, 24, 120, 720, 5040, 40320};

/// Lehmer-code rank of an arrangement (O(l^2), l <= 8).
std::uint32_t rank_arrangement(const Arrangement& a) {
  const int l = static_cast<int>(a.size());
  std::uint32_t r = 0;
  for (int i = 0; i < l; ++i) {
    std::uint32_t smaller = 0;
    for (int j = i + 1; j < l; ++j) {
      if (a[as_size(j)] < a[as_size(i)]) ++smaller;
    }
    r += smaller * kFactorial[l - 1 - i];
  }
  return r;
}

/// Inverse of rank_arrangement (factorial number system decode).
Arrangement unrank_arrangement(std::uint32_t r, int l) {
  Arrangement pool(as_size(l));
  for (int i = 0; i < l; ++i) pool[as_size(i)] = static_cast<std::uint8_t>(i);
  Arrangement out(as_size(l));
  for (int i = 0; i < l; ++i) {
    const std::uint32_t f = kFactorial[l - 1 - i];
    const std::uint32_t idx = r / f;
    r %= f;
    out[as_size(i)] = pool[idx];
    pool.erase(pool.begin() + idx);
  }
  return out;
}

struct Explored {
  // dist/parent indexed by rank(arr) * 2^l + visited_mask.
  std::vector<std::int32_t> dist;
  std::vector<std::int32_t> parent_state;
  std::vector<std::int8_t> parent_gen;
  std::vector<std::uint32_t> queue;
  int l = 0;

  std::uint32_t state_id(const Arrangement& a, std::uint32_t mask) const {
    return rank_arrangement(a) * (1u << l) + mask;
  }

  Arrangement arrangement_of(std::uint32_t state) const {
    return unrank_arrangement(state >> l, l);
  }
};

/// BFS over (arrangement, visited-front set), from the identity arrangement
/// with only block 0 marked visited (it starts at the front).
Explored explore(const SuperIPSpec& spec) {
  Explored e;
  e.l = spec.l;
  assert(spec.l >= 2 && spec.l <= 8);
  const std::uint32_t states = kFactorial[spec.l] * (1u << spec.l);
  e.dist.assign(states, -1);
  e.parent_state.assign(states, -1);
  e.parent_gen.assign(states, -1);

  Arrangement start(as_size(spec.l));
  for (int i = 0; i < spec.l; ++i) start[as_size(i)] = static_cast<std::uint8_t>(i);
  const std::uint32_t s0 = e.state_id(start, 1u);  // block 0 begins at front
  e.dist[s0] = 0;
  e.queue.push_back(s0);

  Arrangement next(as_size(spec.l));
  for (std::size_t head = 0; head < e.queue.size(); ++head) {
    const std::uint32_t s = e.queue[head];
    const Arrangement arr = e.arrangement_of(s);
    const std::uint32_t mask = s & ((1u << spec.l) - 1);
    for (int g = 0; g < static_cast<int>(spec.super_gens.size()); ++g) {
      const Permutation& beta = spec.super_gens[as_size(g)].perm;
      for (int p = 0; p < spec.l; ++p) next[as_size(p)] = arr[beta[p]];
      const std::uint32_t nmask = mask | (1u << next[0]);
      const std::uint32_t ns = e.state_id(next, nmask);
      if (e.dist[ns] < 0) {
        e.dist[ns] = e.dist[s] + 1;
        e.parent_state[ns] = static_cast<std::int32_t>(s);
        e.parent_gen[ns] = static_cast<std::int8_t>(g);
        e.queue.push_back(ns);
      }
    }
  }
  return e;
}

Schedule reconstruct(const Explored& e, std::uint32_t state) {
  Schedule out;
  out.final_arrangement = e.arrangement_of(state);
  std::uint32_t s = state;
  while (e.parent_gen[s] >= 0) {
    out.gens.push_back(e.parent_gen[s]);
    s = static_cast<std::uint32_t>(e.parent_state[s]);
  }
  std::reverse(out.gens.begin(), out.gens.end());
  return out;
}

}  // namespace

std::optional<Schedule> min_visit_all_schedule(const SuperIPSpec& spec) {
  const Explored e = explore(spec);
  const std::uint32_t full = (1u << spec.l) - 1;
  std::int32_t best = -1;
  std::uint32_t best_state = 0;
  for (std::uint32_t r = 0; r < kFactorial[spec.l]; ++r) {
    const std::uint32_t s = r * (1u << spec.l) + full;
    if (e.dist[s] >= 0 && (best < 0 || e.dist[s] < best)) {
      best = e.dist[s];
      best_state = s;
    }
  }
  if (best < 0) return std::nullopt;
  return reconstruct(e, best_state);
}

std::optional<Schedule> schedule_to_arrangement(const SuperIPSpec& spec,
                                                const Arrangement& target) {
  assert(static_cast<int>(target.size()) == spec.l);
  const Explored e = explore(spec);
  const std::uint32_t full = (1u << spec.l) - 1;
  const std::uint32_t s = rank_arrangement(target) * (1u << spec.l) + full;
  if (e.dist[s] < 0) return std::nullopt;
  return reconstruct(e, s);
}

int compute_t(const SuperIPSpec& spec) {
  const auto sched = min_visit_all_schedule(spec);
  return sched ? sched->length() : -1;
}

int compute_t_symmetric(const SuperIPSpec& spec) {
  const Explored e = explore(spec);
  const std::uint32_t full = (1u << spec.l) - 1;
  int worst = -1;
  for (std::uint32_t r = 0; r < kFactorial[spec.l]; ++r) {
    // An arrangement is relevant if reachable with any visited mask.
    bool reachable = false;
    std::int32_t with_full = -1;
    for (std::uint32_t mask = 0; mask <= full; ++mask) {
      const std::int32_t d = e.dist[r * (1u << spec.l) + mask];
      if (d >= 0) {
        reachable = true;
        if (mask == full) with_full = d;
      }
    }
    if (!reachable) continue;
    if (with_full < 0) return -1;  // arrangement reachable but never with all visited
    worst = std::max(worst, with_full);
  }
  return worst;
}

std::uint64_t num_reachable_arrangements(const SuperIPSpec& spec) {
  const Explored e = explore(spec);
  const std::uint32_t full = (1u << spec.l) - 1;
  std::uint64_t count = 0;
  for (std::uint32_t r = 0; r < kFactorial[spec.l]; ++r) {
    for (std::uint32_t mask = 0; mask <= full; ++mask) {
      if (e.dist[r * (1u << spec.l) + mask] >= 0) {
        ++count;
        break;
      }
    }
  }
  return count;
}

}  // namespace ipg
