#include "ipg/label.hpp"

#include <cassert>

namespace ipg {

std::size_t LabelHash::operator()(const Label& x) const noexcept {
  std::size_t h = 1469598103934665603ull;  // FNV offset basis
  for (const std::uint8_t b : x) {
    h ^= b;
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

std::string label_to_string(const Label& x) {
  std::string out;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (i != 0) out += ' ';
    out += std::to_string(static_cast<int>(x[i]));
  }
  return out;
}

std::string label_to_string_grouped(const Label& x, int group) {
  assert(group > 0);
  std::string out;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (i != 0 && i % static_cast<std::size_t>(group) == 0) out += ' ';
    out += std::to_string(static_cast<int>(x[i]));
  }
  return out;
}

Label make_label(const std::vector<int>& symbols) {
  Label out;
  out.reserve(symbols.size());
  for (const int s : symbols) {
    assert(s >= 0 && s < 256);
    out.push_back(static_cast<std::uint8_t>(s));
  }
  return out;
}

Label repeat_label(const Label& block, int copies) {
  Label out;
  out.reserve(block.size() * static_cast<std::size_t>(copies));
  for (int c = 0; c < copies; ++c) out.insert(out.end(), block.begin(), block.end());
  return out;
}

}  // namespace ipg
