#pragma once
// Word-parallel batch kernels over packed labels — the label-crunching
// layer of the batched routing engine (route::QueryEngine).
//
// packed_label.hpp packs a whole label into one or two 64-bit words and
// compiles generators into register-only PackedPerm moves. This header
// adds the operations a *batch* of route queries needs, all operating on
// whole words with no per-label heap traffic:
//
//   - extract_bits / deposit_bits: read or replace one super-symbol block
//     of a packed label (handles blocks straddling the word boundary);
//   - pack_batch / unpack_batch / apply_perm_batch: the scalar codec and
//     PackedPerm lifted over contiguous groups of labels;
//   - PackedSuperCodec: Theorem 3.2 rank <-> label conversion computed
//     entirely in the packed domain for plain super-IP seeds. Each rank
//     digit is one masked block lookup and each unrank digit one table
//     word OR'd into place, so a batch of queries converts ids to labels
//     and back without materializing a single byte-vector Label.
//
// Every kernel is pinned element-wise to its scalar reference
// (LabelCodec / Permutation::apply / SuperRanking) by
// tests/packed_batch_test.cpp; the scalar path stays the differential
// oracle, never a dead branch.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "ipg/packed_label.hpp"
#include "ipg/ranking.hpp"
#include "ipg/super.hpp"

namespace ipg {

/// Bits [start, start + width) of the 128-bit packed value, little-endian
/// (width <= 64; straddling the w[0]/w[1] boundary is handled).
inline std::uint64_t extract_bits(const PackedLabel& x, int start,
                                  int width) noexcept {
  const std::uint64_t mask =
      width >= 64 ? ~0ull : (1ull << width) - 1;
  const int word = start >> 6;
  const int shift = start & 63;
  std::uint64_t v = x.w[word] >> shift;
  if (shift != 0 && word == 0 && shift + width > 64) {
    v |= x.w[1] << (64 - shift);
  }
  return v & mask;
}

/// Replaces bits [start, start + width) of `x` with `value` (which must
/// fit `width` bits).
inline void deposit_bits(PackedLabel& x, int start, int width,
                         std::uint64_t value) noexcept {
  const std::uint64_t mask =
      width >= 64 ? ~0ull : (1ull << width) - 1;
  const int word = start >> 6;
  const int shift = start & 63;
  x.w[word] = (x.w[word] & ~(mask << shift)) | ((value & mask) << shift);
  if (shift != 0 && word == 0 && shift + width > 64) {
    const int spill = shift + width - 64;
    const std::uint64_t spill_mask = (1ull << spill) - 1;
    x.w[1] = (x.w[1] & ~spill_mask) | ((value & mask) >> (64 - shift));
  }
}

/// Packs labels[i] into out[i] for the whole batch. Sizes must match;
/// every label must fit the codec (LabelCodec::pack's contract).
void pack_batch(const LabelCodec& codec, std::span<const Label> labels,
                std::span<PackedLabel> out);

/// Unpacks packed[i] into out[i] (each resized to the codec length).
void unpack_batch(const LabelCodec& codec, std::span<const PackedLabel> packed,
                  std::span<Label> out);

/// out[i] = p.apply(in[i]) for the whole batch — one compiled permutation
/// swept over a contiguous group of labels (`in` and `out` may alias
/// element-wise, i.e. be the same span).
void apply_perm_batch(const PackedPerm& p, std::span<const PackedLabel> in,
                      std::span<PackedLabel> out);

/// Theorem 3.2 rank <-> packed label conversion for *plain* super-IP seeds
/// (identical blocks), computed without unpacking: digit i of a rank is
/// the nucleus node id of block i's content, looked up from the block's
/// bit window directly. Symmetric seeds and shapes that do not pack fall
/// outside this codec (valid() == false); callers keep using SuperRanking
/// there — the scalar path this codec is differentially tested against.
class PackedSuperCodec {
 public:
  PackedSuperCodec() = default;  ///< invalid (valid() == false)

  /// Builds the codec for `spec` against `ranking` (which must have been
  /// constructed from the same spec). Invalid when the seed is symmetric,
  /// the full label does not fit 128 bits, or one block does not fit a
  /// single word.
  PackedSuperCodec(const SuperIPSpec& spec, const SuperRanking& ranking);

  bool valid() const noexcept { return valid_; }
  const LabelCodec& codec() const noexcept { return codec_; }
  int block_bits() const noexcept { return block_bits_; }
  std::uint64_t size() const noexcept { return size_; }

  /// Nucleus node id of block `i`'s content, or kInvalidIPNode when the
  /// content is not a nucleus orbit element.
  Node block_node(const PackedLabel& x, int i) const noexcept {
    return lookup(extract_bits(x, i * block_bits_, block_bits_));
  }

  /// Packed content of nucleus node `v` (the inverse of block_node).
  std::uint64_t node_block(Node v) const noexcept {
    return node_to_block_[v];
  }

  /// Rank of a packed label (must be an orbit element; Debug-asserted).
  std::uint64_t rank(const PackedLabel& x) const;

  /// Rank with validation: SuperRanking::kInvalidRank when some block's
  /// content is outside the nucleus orbit.
  std::uint64_t try_rank(const PackedLabel& x) const;

  /// Packed label of rank `r` (< size()).
  PackedLabel unrank(std::uint64_t r) const;

  /// Batch variants: out[i] = rank(in[i]) / unrank(in[i]).
  void rank_batch(std::span<const PackedLabel> in,
                  std::span<std::uint64_t> out) const;
  void unrank_batch(std::span<const std::uint64_t> in,
                    std::span<PackedLabel> out) const;

 private:
  Node lookup(std::uint64_t block) const noexcept {
    if (!direct_.empty()) {
      return block < direct_.size() ? direct_[block] : kInvalidIPNode;
    }
    // Binary search over the sorted (block word, node) pairs.
    std::size_t lo = 0, hi = sorted_.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (sorted_[mid].first < block) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < sorted_.size() && sorted_[lo].first == block) {
      return sorted_[lo].second;
    }
    return kInvalidIPNode;
  }

  bool valid_ = false;
  int l_ = 0;
  int block_bits_ = 0;
  std::uint64_t nucleus_size_ = 0;
  std::uint64_t size_ = 0;  ///< M^l
  LabelCodec codec_;
  /// block word -> node, direct-indexed when the block shape is small
  /// (block_bits_ <= 16: at most 65,536 slots)...
  std::vector<Node> direct_;
  /// ...sorted pairs otherwise.
  std::vector<std::pair<std::uint64_t, Node>> sorted_;
  std::vector<std::uint64_t> node_to_block_;  ///< node -> block word
};

}  // namespace ipg
