#pragma once
// Node labels: sequences of (possibly repeated) symbols — the "balls" of
// the ball-arrangement game (Section 2). Repetition is exactly what
// distinguishes IP graphs from Cayley graphs.

#include <cstdint>
#include <string>
#include <vector>

namespace ipg {

/// A label is a sequence of small symbols. 8-bit symbols and <= 255
/// positions cover every construction in the paper by a wide margin.
using Label = std::vector<std::uint8_t>;

/// FNV-1a over the symbol bytes; used for the label -> node index.
struct LabelHash {
  std::size_t operator()(const Label& x) const noexcept;
};

/// "1 2 3 4" style rendering (symbols are printed 1-based to match the
/// paper's figures when the label was built from 1-based symbol values).
std::string label_to_string(const Label& x);

/// Rendering with a space between consecutive m-symbol groups, e.g.
/// "12 34 12 34" — the paper's super-symbol visualization.
std::string label_to_string_grouped(const Label& x, int group);

/// Builds a label from an initializer-friendly vector<int> (values must fit
/// in a byte).
Label make_label(const std::vector<int>& symbols);

/// Concatenates `copies` copies of `block` (the super-IP seed shape
/// S1 S1 ... S1 of Section 3.1).
Label repeat_label(const Label& block, int copies);

}  // namespace ipg
