#pragma once
// Packed labels: a fixed-width binary codec for the byte-vector labels of
// label.hpp. A label of k symbols is packed little-end-first into one or
// two 64-bit words, 4 bits per symbol when every symbol fits a nibble and
// 8 bits otherwise — so one machine word covers every nucleus in the
// paper and two words cover labels up to HSN(4, Q4) scale (32 symbols).
//
// The point is not just size: generator application (PackedPerm), label
// comparison, hashing, and the node index (PackedLabelMap) all operate on
// whole words with no heap traffic, which is what lets the IP-graph
// closure and the label routers run allocation-free on their hot paths.
// Labels that do not fit (longer than 32 symbols at 4 bits / 16 at 8
// bits) simply keep using the std::vector<uint8_t> representation; every
// consumer checks LabelCodec::valid() and falls back.

#include <cstdint>
#include <utility>
#include <vector>

#include "ipg/label.hpp"
#include "ipg/permutation.hpp"

namespace ipg {

/// A packed label: up to 128 bits of symbol payload, unused high bits
/// zero. Symbol i of a k-symbol label occupies bits [i*b, (i+1)*b) of the
/// 128-bit little-endian value, b = codec bits per symbol.
struct PackedLabel {
  std::uint64_t w[2] = {0, 0};

  friend bool operator==(const PackedLabel&, const PackedLabel&) = default;
  /// Lexicographic on (w[1], w[0]) — i.e. plain 128-bit numeric order.
  friend bool operator<(const PackedLabel& a, const PackedLabel& b) {
    return a.w[1] != b.w[1] ? a.w[1] < b.w[1] : a.w[0] < b.w[0];
  }
};

/// Word-mixing hash (splitmix64 finalizer over both words).
struct PackedLabelHash {
  std::size_t operator()(const PackedLabel& x) const noexcept {
    std::uint64_t h = x.w[0] + 0x9e3779b97f4a7c15ull * (x.w[1] + 1);
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return static_cast<std::size_t>(h);
  }
};

/// The packing scheme for one label shape (length, symbol width). Since
/// index permutations only reorder symbols, the shape of a seed label is
/// the shape of its whole orbit, so one codec serves an entire IP graph.
class LabelCodec {
 public:
  LabelCodec() = default;  ///< invalid codec (valid() == false)

  /// Codec for labels of `length` symbols whose values never exceed
  /// `max_symbol`. Returns an invalid codec when the shape does not fit
  /// 128 bits.
  static LabelCodec for_shape(int length, int max_symbol) noexcept;

  /// Codec for the orbit of `seed` (length and max symbol read off it).
  static LabelCodec for_label(const Label& seed) noexcept;

  bool valid() const noexcept { return bits_ != 0; }
  int length() const noexcept { return length_; }
  int bits() const noexcept { return bits_; }
  /// 1 when the whole label fits w[0], else 2.
  int words() const noexcept { return length_ * bits_ > 64 ? 2 : 1; }

  /// Packs `x` (must have length() symbols, all representable).
  PackedLabel pack(const Label& x) const;

  /// Packs iff `x` matches the codec shape; false (and `out` untouched)
  /// when the length differs or a symbol overflows bits().
  bool try_pack(const Label& x, PackedLabel& out) const;

  void unpack(const PackedLabel& x, Label& out) const;
  Label unpack(const PackedLabel& x) const;

  /// Symbol `i` of a packed label.
  std::uint8_t symbol(const PackedLabel& x, int i) const noexcept {
    return static_cast<std::uint8_t>(
        (x.w[(i * bits_) >> 6] >> ((i * bits_) & 63)) & mask_);
  }

 private:
  int length_ = 0;
  int bits_ = 0;  // 0 = invalid, else 4 or 8
  std::uint64_t mask_ = 0;
};

/// An index permutation compiled against a codec: apply() permutes the
/// packed symbols entirely in registers. Positions the permutation fixes
/// are carried over by two word masks, so the per-application work is
/// proportional to the number of *moved* symbols — embedded nucleus
/// generators touch only their own block.
class PackedPerm {
 public:
  PackedPerm() = default;
  PackedPerm(const LabelCodec& codec, const Permutation& p);

  PackedLabel apply(const PackedLabel& x) const noexcept {
    PackedLabel out{{x.w[0] & keep_[0], x.w[1] & keep_[1]}};
    for (const Move& m : moves_) {
      out.w[m.dst_word] |= ((x.w[m.src_word] >> m.src_shift) & mask_)
                           << m.dst_shift;
    }
    return out;
  }

 private:
  struct Move {
    std::uint8_t src_word, src_shift, dst_word, dst_shift;
  };
  std::vector<Move> moves_;              // non-fixed positions only
  std::uint64_t keep_[2] = {~0ull, ~0ull};  // bits of fixed positions
  std::uint64_t mask_ = 0;
};

/// Contiguous packed-label array: 8 bytes per label when the codec fits
/// one word, 16 otherwise — replacing the vector-of-vectors label table
/// (24-byte header plus a heap block per node).
class PackedLabelStore {
 public:
  PackedLabelStore() = default;
  explicit PackedLabelStore(int words) : words_(words) {}

  std::uint64_t size() const noexcept {
    return words_ == 0 ? 0 : data_.size() / static_cast<std::uint64_t>(words_);
  }
  void reserve(std::uint64_t labels) {
    data_.reserve(labels * static_cast<std::uint64_t>(words_));
  }

  void push_back(const PackedLabel& x) {
    data_.push_back(x.w[0]);
    if (words_ == 2) data_.push_back(x.w[1]);
  }

  PackedLabel operator[](std::uint64_t i) const noexcept {
    PackedLabel out;
    const std::uint64_t base = i * static_cast<std::uint64_t>(words_);
    out.w[0] = data_[base];
    if (words_ == 2) out.w[1] = data_[base + 1];
    return out;
  }

  std::uint64_t memory_bytes() const noexcept {
    return data_.capacity() * sizeof(std::uint64_t);
  }

 private:
  int words_ = 0;
  std::vector<std::uint64_t> data_;
};

/// Flat open-addressing hash table PackedLabel -> uint64, linear probing,
/// power-of-two capacity, max load factor 0.7 (closure sizes are often
/// exact powers of two, which a 1/2 threshold would bounce to 4x slack on
/// the final insert). Empty slots are marked by
/// a reserved value (kEmptyValue must never be stored). This replaces
/// std::unordered_map<Label, Node, LabelHash> wherever labels pack: one
/// contiguous allocation, no per-node heap blocks, ~3x less memory and no
/// pointer chasing on the closure's hottest loop.
class PackedLabelMap {
 public:
  static constexpr std::uint64_t kEmptyValue = ~0ull;

  PackedLabelMap() { rehash(16); }
  explicit PackedLabelMap(std::uint64_t expected) {
    std::uint64_t cap = 16;
    while (cap < expected * 2) cap <<= 1;
    rehash(cap);
  }

  std::uint64_t size() const noexcept { return size_; }

  /// Inserts key -> value if absent. Returns {slot value pointer, inserted}.
  std::pair<std::uint64_t*, bool> try_emplace(const PackedLabel& key,
                                              std::uint64_t value) {
    if ((size_ + 1) * 10 > slots_.size() * 7) rehash(slots_.size() * 2);
    Slot& s = probe(key);
    if (s.value != kEmptyValue) return {&s.value, false};
    s.key = key;
    s.value = value;
    ++size_;
    return {&s.value, true};
  }

  /// Value pointer, or nullptr when absent.
  const std::uint64_t* find(const PackedLabel& key) const noexcept {
    const Slot& s = const_cast<PackedLabelMap*>(this)->probe(key);
    return s.value == kEmptyValue ? nullptr : &s.value;
  }
  std::uint64_t* find(const PackedLabel& key) noexcept {
    Slot& s = probe(key);
    return s.value == kEmptyValue ? nullptr : &s.value;
  }

  /// Visits every (key, value) pair, in unspecified order. Do not insert
  /// during iteration.
  template <typename F>
  void for_each(F&& f) const {
    for (const Slot& s : slots_) {
      if (s.value != kEmptyValue) f(s.key, s.value);
    }
  }

  void reserve(std::uint64_t expected) {
    std::uint64_t cap = slots_.size();
    while (cap < expected * 2) cap <<= 1;
    if (cap != slots_.size()) rehash(cap);
  }

  std::uint64_t memory_bytes() const noexcept {
    return slots_.capacity() * sizeof(Slot);
  }

 private:
  struct Slot {
    PackedLabel key;
    std::uint64_t value = kEmptyValue;
  };

  Slot& probe(const PackedLabel& key) noexcept {
    const std::uint64_t cap_mask = slots_.size() - 1;
    std::uint64_t i = PackedLabelHash{}(key)&cap_mask;
    while (slots_[i].value != kEmptyValue && !(slots_[i].key == key)) {
      i = (i + 1) & cap_mask;
    }
    return slots_[i];
  }

  void rehash(std::uint64_t new_cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_cap, Slot{});
    for (const Slot& s : old) {
      if (s.value == kEmptyValue) continue;
      probe(s.key) = s;
    }
  }

  std::vector<Slot> slots_;
  std::uint64_t size_ = 0;
};

}  // namespace ipg
