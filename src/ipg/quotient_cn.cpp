#include "ipg/quotient_cn.hpp"

#include <cassert>

#include "graph/quotient.hpp"
#include "util/narrow.hpp"

namespace ipg {

QuotientNetwork make_quotient_cn(const TupleNetwork& net,
                                 [[maybe_unused]] int nucleus_bits,
                                 int merged_bits) {
  assert(net.nucleus_size == (Node{1} << nucleus_bits));
  assert(merged_bits >= 1 && merged_bits < nucleus_bits);

  const Node n = net.graph.num_nodes();
  const std::uint32_t merged = 1u << merged_bits;
  const std::uint32_t heads = net.nucleus_size / merged;  // merged leading values
  const std::uint32_t suffixes = net.num_modules();

  // Color = (v1 >> merged_bits, v2, ..., vl) in mixed radix.
  std::vector<std::uint32_t> color(n);
  for (Node u = 0; u < n; ++u) {
    const auto tuple = net.decode(u);
    std::uint32_t c = tuple[0] >> merged_bits;
    for (int i = 1; i < net.l; ++i) c = c * net.nucleus_size + tuple[as_size(i)];
    color[u] = c;
  }

  QuotientNetwork out;
  out.num_modules = suffixes;
  out.nodes_per_module = heads;
  out.graph = quotient_graph(net.graph, color, heads * suffixes);
  // Physical node id = head * suffixes' ... mixed radix above: leading digit
  // is the merged head, the rest is the suffix, so module = c % suffixes.
  out.module_of.resize(out.graph.num_nodes());
  for (Node p = 0; p < out.graph.num_nodes(); ++p) {
    out.module_of[p] = p % suffixes;
  }
  return out;
}

}  // namespace ipg
