#pragma once
// IP-graph construction: closes the seed label under the generator set by
// breadth-first exploration of the ball-arrangement game's state space
// (Section 2). This is the executable heart of the model — every network
// family in src/ipg/families.hpp is produced through this one function.
//
// Storage: when the seed's shape fits the packed-label codec (which it
// does for every family the paper enumerates explicitly), node labels are
// held in a contiguous PackedLabelStore (8 or 16 bytes per node) and the
// label -> node index in a flat open-addressing PackedLabelMap — roughly
// 3x less memory than the former vector-of-vectors plus unordered_map,
// with no per-node heap blocks. Oversized labels transparently fall back
// to the legacy representation. Use the accessors (label(), label_into(),
// labels(), node_of(), index_size()); the storage members are internal.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "ipg/label.hpp"
#include "ipg/packed_label.hpp"
#include "ipg/spec.hpp"
#include "util/thread_pool.hpp"

namespace ipg {

inline constexpr Node kInvalidIPNode = 0xffffffffu;

/// A realized IP graph: the CSR digraph (arc tags = generator indices),
/// the node -> label table in discovery (BFS) order with the seed as node
/// 0, and the inverse label -> node index.
struct IPGraph {
  IPGraphSpec spec;
  Graph graph;

  Node num_nodes() const noexcept { return graph.num_nodes(); }

  /// True when labels are stored packed (the common case).
  bool packed() const noexcept { return codec_.valid(); }

  /// Node id of `x`, or kInvalidIPNode when `x` is not a generated element.
  Node node_of(const Label& x) const;

  /// Neighbor reached from `u` by generator `gen` (label-level application;
  /// may be `u` itself when the generator fixes the label). Allocation-free
  /// in packed mode; the legacy representation allocates a temporary —
  /// hot callers on the fallback path should use the scratch overload.
  Node apply_generator(Node u, int gen) const;

  /// Same, with caller-provided scratch so the fallback path also stays
  /// allocation-free after warmup.
  Node apply_generator(Node u, int gen, Label& scratch) const;

  /// Label of node `u`, by value (packed storage cannot hand out a
  /// reference). Prefer label_into() in loops.
  Label label(Node u) const;

  /// Unpacks the label of `u` into `out` (resized as needed).
  void label_into(Node u, Label& out) const;

  /// Compatibility view: the full node -> label table as a
  /// std::vector<Label>, materialized on first call in packed mode (and
  /// cached; not thread-safe against concurrent first calls). Figure
  /// harnesses, tests and examples use this; scale-sensitive code should
  /// stick to label()/label_into().
  const std::vector<Label>& labels() const;

  /// Number of indexed labels (== num_nodes()).
  std::uint64_t index_size() const noexcept;

  /// Heap bytes held by the label table / the label -> node index (exact
  /// for packed storage, a close estimate for the legacy containers).
  /// Reported by bench/perf_core's bytes-per-node counters.
  std::uint64_t label_bytes() const noexcept;
  std::uint64_t index_bytes() const noexcept;

  // --- internal storage (builders write these; layout may change) ---
  LabelCodec codec_;                 // invalid <=> legacy representation
  PackedLabelStore packed_labels_;   // packed mode
  PackedLabelMap packed_index_;      // packed mode: label -> node
  std::vector<PackedPerm> packed_gens_;  // packed mode: compiled generators
  std::vector<Label> vec_labels_;    // legacy mode
  std::unordered_map<Label, Node, LabelHash> vec_index_;  // legacy mode

 private:
  mutable std::vector<Label> labels_view_;  // packed-mode compat cache
};

/// Builds the IP graph for `spec`. Throws std::length_error if the closure
/// exceeds `max_nodes` — a guard against accidentally requesting an
/// enumeration far beyond laptop scale (the analysis layer's closed forms
/// take over there, and net::ImplicitSuperIPTopology navigates super-IP
/// instances without materializing them at all).
IPGraph build_ip_graph(IPGraphSpec spec, std::uint64_t max_nodes = 1u << 24);

/// Reference builder that forces the legacy vector-of-vectors label
/// storage regardless of packability. Kept for differential tests and for
/// bench/perf_core's packed-vs-vector closure rows; produces a graph,
/// node numbering and label table identical to build_ip_graph.
IPGraph build_ip_graph_unpacked(IPGraphSpec spec,
                                std::uint64_t max_nodes = 1u << 24);

/// Parallel closure: each BFS frontier is expanded in parallel (label
/// application + existing-node lookup), new labels are deduplicated in a
/// seen-set sharded by label hash, and node ids are assigned after sorting
/// the frontier's new labels by their serial discovery order — so the
/// node numbering, label table, index and arc list are byte-identical to
/// the serial builder at every thread count. A resolved thread count of 1
/// runs the serial code path unchanged.
IPGraph build_ip_graph(IPGraphSpec spec, std::uint64_t max_nodes,
                       const ExecPolicy& exec);

}  // namespace ipg
