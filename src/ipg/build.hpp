#pragma once
// IP-graph construction: closes the seed label under the generator set by
// breadth-first exploration of the ball-arrangement game's state space
// (Section 2). This is the executable heart of the model — every network
// family in src/ipg/families.hpp is produced through this one function.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "ipg/label.hpp"
#include "ipg/spec.hpp"
#include "util/thread_pool.hpp"

namespace ipg {

/// A realized IP graph: the CSR digraph (arc tags = generator indices),
/// the node -> label table in discovery (BFS) order with the seed as node
/// 0, and the inverse label -> node index.
struct IPGraph {
  IPGraphSpec spec;
  Graph graph;
  std::vector<Label> labels;
  std::unordered_map<Label, Node, LabelHash> index;

  Node num_nodes() const noexcept { return graph.num_nodes(); }

  /// Node id of `x`, or kInvalidIPNode when `x` is not a generated element.
  Node node_of(const Label& x) const;

  /// Neighbor reached from `u` by generator `gen` (label-level application;
  /// may be `u` itself when the generator fixes the label).
  Node apply_generator(Node u, int gen) const;
};

inline constexpr Node kInvalidIPNode = 0xffffffffu;

/// Builds the IP graph for `spec`. Throws std::length_error if the closure
/// exceeds `max_nodes` — a guard against accidentally requesting an
/// enumeration far beyond laptop scale (the analysis layer's closed forms
/// take over there).
IPGraph build_ip_graph(IPGraphSpec spec, std::uint64_t max_nodes = 1u << 24);

/// Parallel closure: each BFS frontier is expanded in parallel (label
/// application + existing-node lookup), new labels are deduplicated in a
/// seen-set sharded by label hash, and node ids are assigned after sorting
/// the frontier's new labels by their serial discovery order — so the
/// node numbering, label table, index and arc list are byte-identical to
/// the serial builder at every thread count. A resolved thread count of 1
/// runs the legacy serial code path unchanged.
IPGraph build_ip_graph(IPGraphSpec spec, std::uint64_t max_nodes,
                       const ExecPolicy& exec);

}  // namespace ipg
