#include "ipg/packed_batch.hpp"

#include <algorithm>
#include <cassert>

#include "util/narrow.hpp"

namespace ipg {

void pack_batch(const LabelCodec& codec, std::span<const Label> labels,
                std::span<PackedLabel> out) {
  assert(labels.size() == out.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    out[i] = codec.pack(labels[i]);
  }
}

void unpack_batch(const LabelCodec& codec, std::span<const PackedLabel> packed,
                  std::span<Label> out) {
  assert(packed.size() == out.size());
  for (std::size_t i = 0; i < packed.size(); ++i) {
    codec.unpack(packed[i], out[i]);
  }
}

void apply_perm_batch(const PackedPerm& p, std::span<const PackedLabel> in,
                      std::span<PackedLabel> out) {
  assert(in.size() == out.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = p.apply(in[i]);
  }
}

namespace {

/// Direct block -> node tables above this shape would waste memory for no
/// lookup win (2^16 Node slots = 256 KiB; larger blocks binary-search).
constexpr int kMaxDirectBits = 16;

}  // namespace

PackedSuperCodec::PackedSuperCodec(const SuperIPSpec& spec,
                                   const SuperRanking& ranking) {
  if (ranking.symmetric_seed()) return;  // plain seeds only
  codec_ = LabelCodec::for_label(spec.seed);
  if (!codec_.valid()) return;
  l_ = spec.l;
  block_bits_ = spec.m * codec_.bits();
  if (block_bits_ > 64) return;  // one block must fit a word
  const IPGraph& nucleus = ranking.nucleus();
  nucleus_size_ = nucleus.num_nodes();
  size_ = ranking.size();

  // Pack every nucleus label with the *full-label* codec's symbol width
  // (which may be wider than the nucleus' own minimal codec) so extracted
  // block windows compare bit-for-bit.
  node_to_block_.reserve(nucleus_size_);
  Label content;
  const int bits = codec_.bits();
  for (Node v = 0; v < nucleus.num_nodes(); ++v) {
    nucleus.label_into(v, content);
    std::uint64_t w = 0;
    for (int j = 0; j < spec.m; ++j) {
      w |= static_cast<std::uint64_t>(content[as_size(j)])
           << (static_cast<unsigned>(j * bits));
    }
    node_to_block_.push_back(w);
  }

  if (block_bits_ <= kMaxDirectBits) {
    direct_.assign(1ull << block_bits_, kInvalidIPNode);
    for (Node v = 0; v < nucleus.num_nodes(); ++v) {
      direct_[node_to_block_[v]] = v;
    }
  } else {
    sorted_.reserve(nucleus_size_);
    for (Node v = 0; v < nucleus.num_nodes(); ++v) {
      sorted_.emplace_back(node_to_block_[v], v);
    }
    std::sort(sorted_.begin(), sorted_.end());
  }
  valid_ = true;
}

std::uint64_t PackedSuperCodec::rank(const PackedLabel& x) const {
  std::uint64_t r = 0;
  for (int i = 0; i < l_; ++i) {
    const Node d = block_node(x, i);
    assert(d != kInvalidIPNode && "block content outside the nucleus orbit");
    r = r * nucleus_size_ + d;
  }
  return r;
}

std::uint64_t PackedSuperCodec::try_rank(const PackedLabel& x) const {
  std::uint64_t r = 0;
  for (int i = 0; i < l_; ++i) {
    const Node d = block_node(x, i);
    if (d == kInvalidIPNode) return SuperRanking::kInvalidRank;
    r = r * nucleus_size_ + d;
  }
  return r;
}

PackedLabel PackedSuperCodec::unrank(std::uint64_t r) const {
  assert(r < size_);
  PackedLabel out;
  for (int i = l_ - 1; i >= 0; --i) {
    const std::uint64_t d = r % nucleus_size_;
    r /= nucleus_size_;
    // Blocks are deposited into zeroed words, so a plain shifted OR
    // suffices (no read-modify-write mask as in deposit_bits).
    const int start = i * block_bits_;
    const std::uint64_t w = node_to_block_[d];
    out.w[start >> 6] |= w << (start & 63);
    if ((start & 63) != 0 && (start >> 6) == 0 &&
        (start & 63) + block_bits_ > 64) {
      out.w[1] |= w >> (64 - (start & 63));
    }
  }
  return out;
}

void PackedSuperCodec::rank_batch(std::span<const PackedLabel> in,
                                  std::span<std::uint64_t> out) const {
  assert(in.size() == out.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = rank(in[i]);
}

void PackedSuperCodec::unrank_batch(std::span<const std::uint64_t> in,
                                    std::span<PackedLabel> out) const {
  assert(in.size() == out.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = unrank(in[i]);
}

}  // namespace ipg
