#pragma once
// Symmetric super-IP graphs (Section 3.5): replace the identical-block seed
// S1 S1 ... S1 with distinct-symbol blocks S1 S2 ... Sl (block i's symbols
// shifted into the range (i*m, (i+1)*m]). The result is a Cayley graph —
// vertex-symmetric and regular — that shares the generator set (and hence
// many algorithms) with the original network.

#include <cstdint>

#include "ipg/super.hpp"

namespace ipg {

/// Symmetric variant of `base`: same generators, seed block i shifted by
/// i*m. Requires the base seed blocks to be identical with symbols in
/// [1, m] (true for every nucleus in families.hpp) and l*m <= 255.
SuperIPSpec make_symmetric(const SuperIPSpec& base);

/// True iff the spec's seed has no repeated symbol, which makes the
/// resulting super-IP graph a Cayley graph (Section 2) and therefore
/// vertex-transitive. Every make_symmetric() output qualifies; plain
/// super-IP seeds (identical blocks) never do for l > 1. Callers use this
/// to engage the single-source fast path of exact_analysis
/// (ExactOptions::assume_vertex_transitive) without any graph-side check.
bool is_cayley(const SuperIPSpec& spec);

/// Node count of the symmetric variant predicted by Section 3.5:
/// (number of reachable block arrangements) * M^l, where M is the nucleus
/// size — l! * M^l for HSN/super-flip, l * M^l for cyclic-shift networks.
std::uint64_t symmetric_size(const SuperIPSpec& base, std::uint64_t nucleus_size);

}  // namespace ipg
