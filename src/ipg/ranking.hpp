#pragma once
// Node ranking for super-IP graphs: maps each node to a radix-M numeral
// with one digit per super-symbol (M = nucleus size), the labeling used in
// Fig. 1 of the paper ("radix-4 node labels" for HSN(l, Q2)).
//
// The rank is a *perfect index* of the node set: plain seeds biject onto
// [0, M^l) (Theorem 3.2), and symmetric seeds (Section 3.5) onto
// [0, A * M^l) where A is the number of reachable block arrangements —
// the node id space net::ImplicitSuperIPTopology navigates without ever
// materializing the graph. The digit lookup uses a sorted packed-label
// table (binary search), not a hash map, so ranking adds no per-node heap
// blocks on top of the nucleus graph.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "ipg/build.hpp"
#include "ipg/packed_label.hpp"
#include "ipg/schedule.hpp"
#include "ipg/super.hpp"

namespace ipg {

/// Ranks nodes of a super-IP graph. For a *plain* seed (identical blocks):
/// digit i is the nucleus-graph node id of super-symbol i's content, and
/// the rank is the base-M value of the digit string — a bijection onto
/// [0, M^l) by Theorem 3.2. For a *symmetric* seed (block i = block 0
/// with every symbol shifted by i*m, as produced by make_symmetric): the
/// rank prepends the index of the current block arrangement among the
/// reachable arrangements, a bijection onto [0, A * M^l). Any other seed
/// shape throws std::invalid_argument.
class SuperRanking {
 public:
  explicit SuperRanking(const SuperIPSpec& spec);

  std::uint64_t nucleus_size() const noexcept { return nucleus_.num_nodes(); }

  /// True when the spec has a symmetric (shifted-block) seed.
  bool symmetric_seed() const noexcept { return symmetric_; }

  /// Number of reachable block arrangements A (1 for plain seeds).
  std::uint64_t num_arrangements() const noexcept {
    return symmetric_ ? arrangements_.size() : 1;
  }

  /// Total number of nodes = A * M^l — the size of the rank's codomain.
  std::uint64_t size() const noexcept { return num_arrangements() * ml_; }

  /// Digit of super-symbol position `i` in `full` (the nucleus node id of
  /// its content; for symmetric seeds the content is shifted back to the
  /// base symbol range first). `full` must be an orbit element.
  std::uint32_t digit(const Label& full, int i) const;

  /// Rank of the whole label: base-M digit value, prefixed by the
  /// arrangement index for symmetric seeds.
  std::uint64_t rank(const Label& full) const;

  /// Sentinel returned by try_rank for labels outside the orbit.
  static constexpr std::uint64_t kInvalidRank = ~0ull;

  /// rank() with validation instead of a precondition: kInvalidRank when
  /// `full` has the wrong length, a block content outside the nucleus
  /// orbit, or (symmetric seeds) an unreachable block arrangement.
  std::uint64_t try_rank(const Label& full) const;

  /// Inverse of rank(): the node label with the given rank (< size()).
  Label unrank(std::uint64_t r) const;
  void unrank_into(std::uint64_t r, Label& out) const;

  /// Digit string, e.g. "231" (digits < 10) or "2.3.1" otherwise.
  std::string radix_string(const Label& full) const;

  /// The nucleus IP graph the digits index into.
  const IPGraph& nucleus() const noexcept { return nucleus_; }

 private:
  /// Seed-block index whose symbols currently sit at position `i`
  /// (0 for plain seeds; symbol-range lookup for symmetric seeds).
  int owner_block(const Label& full, int i) const noexcept;

  /// Nucleus node of position `i`'s content after shifting symbols down by
  /// `shift`; kInvalidIPNode when the content is not an orbit element.
  Node digit_lookup(const Label& full, int i, int shift) const;

  int l_ = 0, m_ = 0;
  bool symmetric_ = false;
  int base_lo_ = 0;     ///< smallest symbol of the base (leftmost) block
  int base_hi_ = 0;     ///< largest symbol of the base (leftmost) block
  std::uint64_t ml_ = 1;  ///< M^l
  IPGraph nucleus_;
  LabelCodec block_codec_;  ///< packs one base-range block
  /// Sorted (packed nucleus label, nucleus node) pairs: the hash-free
  /// content -> digit lookup. Empty when the block shape doesn't pack
  /// (then nucleus_.node_of serves lookups).
  std::vector<std::pair<PackedLabel, Node>> sorted_blocks_;
  /// Reachable block arrangements, sorted lexicographically; the
  /// arrangement index is the leading digit of the symmetric rank. Empty
  /// for plain seeds.
  std::vector<Arrangement> arrangements_;
};

}  // namespace ipg
