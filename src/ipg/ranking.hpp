#pragma once
// Node ranking for super-IP graphs: maps each node to a radix-M numeral
// with one digit per super-symbol (M = nucleus size), the labeling used in
// Fig. 1 of the paper ("radix-4 node labels" for HSN(l, Q2)).

#include <cstdint>
#include <string>

#include "ipg/build.hpp"
#include "ipg/super.hpp"

namespace ipg {

/// Ranks nodes of a *plain* super-IP graph (identical seed blocks): digit i
/// is the nucleus-graph node id of super-symbol i's content, and the rank
/// is the base-M value of the digit string. Rank is a bijection onto
/// [0, M^l) by Theorem 3.2.
class SuperRanking {
 public:
  explicit SuperRanking(const SuperIPSpec& spec);

  std::uint64_t nucleus_size() const noexcept { return nucleus_.num_nodes(); }

  /// Digit of super-symbol `i` in `full` (its content's nucleus node id).
  std::uint32_t digit(const Label& full, int i) const;

  /// Base-M rank of the whole label.
  std::uint64_t rank(const Label& full) const;

  /// Digit string, e.g. "231" (digits < 10) or "2.3.1" otherwise.
  std::string radix_string(const Label& full) const;

 private:
  int l_, m_;
  IPGraph nucleus_;
};

}  // namespace ipg
