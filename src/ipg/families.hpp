#pragma once
// The paper's network families (Section 3), built from three ingredients:
//   * nucleus IP specs (hypercube, folded hypercube, star, pancake,
//     bubble-sort, complete graph, cycle, generalized hypercube);
//   * super-generator sets (transpositions -> HSN, cyclic shifts -> CN,
//     flips -> super-flip networks);
//   * the generic SuperIPSpec assembly.
// Because make_hsn/make_*_cn/make_super_flip accept *any* IP spec as the
// nucleus — including the spec of another super-IP graph — recursively
// hierarchical networks (RHSN and friends) come out of plain composition.
//
// For nuclei with no convenient IP representation (e.g. the Petersen
// graph), build_super_network_direct constructs the same network in tuple
// space: nodes are l-tuples of nucleus vertices, nucleus edges act on the
// leftmost coordinate and super-generators permute coordinates. On IP
// nuclei the two constructions produce isomorphic graphs (tested).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "ipg/build.hpp"
#include "ipg/spec.hpp"
#include "ipg/super.hpp"

namespace ipg {

// ---------------------------------------------------------------------------
// Super-generator sets (block permutations over l positions).

/// Transpositions T2..Tl (paper: (1,i)_m) — the HSN generators.
std::vector<Generator> transposition_super_gens(int l);

/// Ring shifts {L, R} (one generator when l == 2, where L == R).
std::vector<Generator> ring_shift_super_gens(int l);

/// All shifts L1..L(l-1) — complete cyclic-shift networks.
std::vector<Generator> complete_shift_super_gens(int l);

/// The single shift {L} — directed cyclic-shift networks.
std::vector<Generator> directed_shift_super_gens(int l);

/// Flips F2..Fl (reverse the first i blocks) — super-flip networks.
std::vector<Generator> flip_super_gens(int l);

// ---------------------------------------------------------------------------
// Nucleus IP specs. All use seed symbols 1..m so that symmetric variants
// (symmetric.hpp) can shift each block into a disjoint symbol range.

/// n-cube Q_n in the paper's pair encoding: label 1..2n, one generator
/// (2i-1, 2i) per dimension; bit i is the orientation of pair i.
IPGraphSpec hypercube_nucleus(int n);

/// Folded hypercube FQ_n: Q_n plus the all-pairs swap (complement) generator.
IPGraphSpec folded_hypercube_nucleus(int n);

/// Star graph S_n: generators (1, i), i = 2..n (Akers et al.).
IPGraphSpec star_nucleus(int n);

/// Pancake graph: prefix-flip generators of length 2..n.
IPGraphSpec pancake_nucleus(int n);

/// Bubble-sort graph: adjacent transpositions (i, i+1).
IPGraphSpec bubble_sort_nucleus(int n);

/// Complete graph K_r as an IP graph: label 1..r, all nontrivial rotations.
IPGraphSpec complete_nucleus(int r);

/// Cycle C_r: rotations by +-1.
IPGraphSpec cycle_nucleus(int r);

/// Generalized hypercube GH(radices): one symbol block per dimension d of
/// size radices[d], with all rotations inside the block; node degree
/// sum(r_d - 1), diameter = #dimensions (Bhuyan & Agrawal [7]) — the
/// nucleus the paper recommends for diameter-optimal super-IP graphs.
IPGraphSpec generalized_hypercube_nucleus(std::span<const int> radices);

/// k-ary n-cube (torus) as an IP graph: one k-symbol block per dimension
/// with +-1 rotations inside the block — the product-of-cycles Cayley
/// form the paper lists among the classic examples. Coordinate d of a
/// node decodes as label[offset_d] - offset_d - 1.
IPGraphSpec kary_ncube_nucleus(int k, int n);

/// Rotator graph (Corbett [9]): n! nodes, directed generators that rotate
/// the first i symbols left by one, i = 2..n; degree n-1, diameter n-1 —
/// the directed counterpart of the star/pancake Cayley family.
IPGraphSpec rotator_nucleus(int n);

// ---------------------------------------------------------------------------
// Family assembly.

/// HSN(l, G): hierarchical swap network over nucleus spec `g`.
SuperIPSpec make_hsn(int l, const IPGraphSpec& g);

/// Ring cyclic-shift network ring-CN(l, G) (also "basic-CN").
SuperIPSpec make_ring_cn(int l, const IPGraphSpec& g);

/// Complete cyclic-shift network complete-CN(l, G).
SuperIPSpec make_complete_cn(int l, const IPGraphSpec& g);

/// Directed cyclic-shift network (single L generator).
SuperIPSpec make_directed_cn(int l, const IPGraphSpec& g);

/// Super-flip network SFN(l, G).
SuperIPSpec make_super_flip(int l, const IPGraphSpec& g);

/// HCN(n, n) without diameter links, i.e. HSN(2, Q_n) (Section 2's worked
/// example).
SuperIPSpec make_hcn(int n);

/// Two-level folded-hypercube network, the super-IP representative of the
/// HFN family [13] (Section 1 lists HFN among the networks the model
/// unifies): HSN(2, FQ_n). Size 4^n, degree n + 2, diameter 2*ceil(n/2)+1.
SuperIPSpec make_hfn(int n);

/// Recursive hierarchical swapped network RHSN [26]: `depth`-fold nesting
/// of two-level swap networks, RHSN(0, G) = G and
/// RHSN(d, G) = HSN(2, RHSN(d-1, G)). Size = |G|^(2^depth). Works because
/// a super-IP spec lifts to a plain IP spec usable as a nucleus.
IPGraphSpec make_rhsn(int depth, const IPGraphSpec& g);

/// Adds Ghose-Desai diameter links to an explicit HCN(n, n) graph: each
/// node whose two halves are equal, (x, x), gains a link to (x~, x~) where
/// x~ is the bitwise complement. Diameter links are content-dependent, so
/// they are a graph-level decoration, not an IP generator.
Graph add_hcn_diameter_links(const IPGraph& hcn, int n);

// ---------------------------------------------------------------------------
// Direct (tuple-space) construction for arbitrary nuclei.

/// A super network realized on l-tuples of nucleus vertices.
struct TupleNetwork {
  Graph graph;
  Node nucleus_size = 0;
  int l = 0;

  /// Tuple encoding: node id = v_1 * M^(l-1) + v_2 * M^(l-2) + ... + v_l.
  Node encode(std::span<const Node> tuple) const;
  std::vector<Node> decode(Node id) const;

  /// Module id with one nucleus per module: the suffix (v_2, ..., v_l).
  std::uint32_t module_of(Node id) const;
  std::uint32_t num_modules() const;
};

/// Builds the super network over an explicit nucleus graph: nucleus arcs
/// act on coordinate v_1; each block generator beta sends (v_1..v_l) to
/// (v_beta(1)..v_beta(l)). Equivalent to build_super_ip_graph when the
/// nucleus is an IP graph; works for any nucleus (e.g. Petersen).
TupleNetwork build_super_network_direct(const Graph& nucleus, int l,
                                        std::span<const Generator> super_gens);

}  // namespace ipg
