#pragma once
// Super-IP graphs (Section 3): IP graphs whose seed is l groups
// (super-symbols) of m symbols, with nucleus generators permuting the
// leftmost group and super-generators permuting whole groups.

#include <cstdint>
#include <string>
#include <vector>

#include "ipg/build.hpp"
#include "ipg/label.hpp"
#include "ipg/spec.hpp"

namespace ipg {

/// Declarative description of a super-IP graph. Nucleus generators are
/// given as m-position permutations, super-generators as l-position *block*
/// permutations; to_ip_spec() lifts both onto the full l*m-symbol label.
struct SuperIPSpec {
  std::string name;
  int l = 0;  ///< number of super-symbols in a label
  int m = 0;  ///< symbols per super-symbol

  std::vector<Generator> nucleus_gens;  ///< permutations over m positions
  std::vector<Generator> super_gens;    ///< block permutations over l positions

  /// Full seed (length l*m). Plain super-IP graphs use l identical copies
  /// of the nucleus seed; symmetric variants use distinct-symbol blocks
  /// (Section 3.5).
  Label seed;

  int label_length() const noexcept { return l * m; }

  /// Seed content of super-symbol `i` (0-based).
  Label seed_block(int i) const;

  /// The whole-label IP spec: nucleus generators embedded at the leftmost
  /// block, super-generators expanded to move m-symbol blocks.
  IPGraphSpec to_ip_spec() const;

  /// IP spec of the nucleus graph alone, seeded with `block_seed`
  /// (defaults to seed_block(0)).
  IPGraphSpec nucleus_spec() const;
  IPGraphSpec nucleus_spec(Label block_seed) const;

  bool valid() const;
};

/// Builds the explicit graph of a super-IP spec.
IPGraph build_super_ip_graph(const SuperIPSpec& spec,
                             std::uint64_t max_nodes = 1u << 24);

/// Parallel variant; see build_ip_graph(spec, max_nodes, exec) for the
/// determinism guarantee (byte-identical to the serial builder).
IPGraph build_super_ip_graph(const SuperIPSpec& spec, std::uint64_t max_nodes,
                             const ExecPolicy& exec);

/// Module (cluster) assignment placing one nucleus per module (Section 5):
/// two nodes share a module iff their labels agree outside the leftmost
/// super-symbol. Returns module ids in [0, num_modules).
struct ModuleAssignment {
  std::vector<std::uint32_t> module_of;  ///< per node
  std::uint32_t num_modules = 0;
};

ModuleAssignment nucleus_modules(const IPGraph& g, int m);

/// Extracts the content of super-symbol `i` from a full label.
Label block_of(const Label& x, int i, int m);

/// Replaces super-symbol `i` of `x` with `content`.
void set_block(Label& x, int i, int m, const Label& content);

}  // namespace ipg
