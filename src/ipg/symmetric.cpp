#include "ipg/symmetric.hpp"

#include <cassert>
#include <stdexcept>

#include "ipg/schedule.hpp"
#include "util/narrow.hpp"

namespace ipg {

SuperIPSpec make_symmetric(const SuperIPSpec& base) {
  SuperIPSpec out = base;
  out.name = "sym-" + base.name;
  const Label block = base.seed_block(0);
  for (int i = 1; i < base.l; ++i) {
    if (base.seed_block(i) != block) {
      throw std::invalid_argument(
          "make_symmetric requires identical seed blocks: " + base.name);
    }
  }
  for (const std::uint8_t s : block) {
    if (s < 1 || s > base.m) {
      throw std::invalid_argument("seed symbols must lie in [1, m]: " + base.name);
    }
  }
  if (base.l * base.m > 255) {
    throw std::invalid_argument("symmetric seed symbols would overflow a byte");
  }
  for (int i = 0; i < base.l; ++i) {
    for (int j = 0; j < base.m; ++j) {
      out.seed[as_size(i * base.m + j)] =
          static_cast<std::uint8_t>(block[as_size(j)] + i * base.m);
    }
  }
  return out;
}

bool is_cayley(const SuperIPSpec& spec) {
  bool seen[256] = {};
  for (const std::uint8_t s : spec.seed) {
    if (seen[s]) return false;
    seen[s] = true;
  }
  return !spec.seed.empty();
}

std::uint64_t symmetric_size(const SuperIPSpec& base, std::uint64_t nucleus_size) {
  std::uint64_t n = num_reachable_arrangements(base);
  for (int i = 0; i < base.l; ++i) n *= nucleus_size;
  return n;
}

}  // namespace ipg
