#include "ipg/super.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "ipg/packed_label.hpp"

namespace ipg {

Label SuperIPSpec::seed_block(int i) const { return block_of(seed, i, m); }

IPGraphSpec SuperIPSpec::to_ip_spec() const {
  assert(valid());
  IPGraphSpec out;
  out.name = name;
  out.seed = seed;
  for (const Generator& g : nucleus_gens) {
    out.generators.push_back(Generator{g.name, g.perm.embed(l * m, 0), false});
  }
  for (const Generator& g : super_gens) {
    out.generators.push_back(Generator{g.name, g.perm.expand_blocks(m), true});
  }
  return out;
}

IPGraphSpec SuperIPSpec::nucleus_spec() const { return nucleus_spec(seed_block(0)); }

IPGraphSpec SuperIPSpec::nucleus_spec(Label block_seed) const {
  assert(static_cast<int>(block_seed.size()) == m);
  IPGraphSpec out;
  out.name = name + ".nucleus";
  out.seed = std::move(block_seed);
  out.generators = nucleus_gens;
  return out;
}

bool SuperIPSpec::valid() const {
  if (l < 2 || m < 1) return false;
  if (static_cast<int>(seed.size()) != l * m) return false;
  for (const Generator& g : nucleus_gens) {
    if (g.perm.size() != m || g.perm.is_identity()) return false;
  }
  for (const Generator& g : super_gens) {
    if (g.perm.size() != l || g.perm.is_identity()) return false;
  }
  return !super_gens.empty();
}

IPGraph build_super_ip_graph(const SuperIPSpec& spec, std::uint64_t max_nodes) {
  return build_ip_graph(spec.to_ip_spec(), max_nodes);
}

IPGraph build_super_ip_graph(const SuperIPSpec& spec, std::uint64_t max_nodes,
                             const ExecPolicy& exec) {
  return build_ip_graph(spec.to_ip_spec(), max_nodes, exec);
}

ModuleAssignment nucleus_modules(const IPGraph& g, int m) {
  ModuleAssignment out;
  out.module_of.resize(g.num_nodes());
  Label x, suffix;
  // Key the modules on the packed suffix when it fits; the flat table
  // avoids one heap allocation per node and the unordered_map overhead.
  // The orbit's symbol multiset is the seed's, so its max symbol bounds
  // every suffix symbol.
  LabelCodec codec;
  if (g.num_nodes() > 0) {
    const Label seed_label = g.label(0);
    const int max_symbol = *std::max_element(seed_label.begin(), seed_label.end());
    codec = LabelCodec::for_shape(static_cast<int>(seed_label.size()) - m,
                                  max_symbol);
  }
  if (codec.valid()) {
    PackedLabelMap ids;
    for (Node u = 0; u < g.num_nodes(); ++u) {
      g.label_into(u, x);
      assert(static_cast<int>(x.size()) > m);
      suffix.assign(x.begin() + m, x.end());
      const auto [slot, inserted] =
          ids.try_emplace(codec.pack(suffix), out.num_modules);
      if (inserted) ++out.num_modules;
      out.module_of[u] = static_cast<std::uint32_t>(*slot);
    }
    return out;
  }
  std::unordered_map<Label, std::uint32_t, LabelHash> ids;
  for (Node u = 0; u < g.num_nodes(); ++u) {
    g.label_into(u, x);
    assert(static_cast<int>(x.size()) > m);
    suffix.assign(x.begin() + m, x.end());
    const auto [it, inserted] = ids.try_emplace(suffix, out.num_modules);
    if (inserted) ++out.num_modules;
    out.module_of[u] = it->second;
  }
  return out;
}

Label block_of(const Label& x, int i, int m) {
  assert(i >= 0 && (i + 1) * m <= static_cast<int>(x.size()));
  return Label(x.begin() + i * m, x.begin() + (i + 1) * m);
}

void set_block(Label& x, int i, int m, const Label& content) {
  assert(static_cast<int>(content.size()) == m);
  assert(i >= 0 && (i + 1) * m <= static_cast<int>(x.size()));
  std::copy(content.begin(), content.end(), x.begin() + i * m);
}

}  // namespace ipg
