#pragma once
// IP-graph specifications: a seed label plus a set of named generators
// (Section 2). The spec is the declarative form; build.hpp turns it into an
// explicit graph by closing the seed under the generators.

#include <string>
#include <vector>

#include "ipg/label.hpp"
#include "ipg/permutation.hpp"

namespace ipg {

/// A named generator. `is_super` marks super-generators (block-moving
/// permutations) in super-IP specs; plain IP specs leave it false.
struct Generator {
  std::string name;
  Permutation perm;
  bool is_super = false;
};

/// Declarative description of an IP graph.
struct IPGraphSpec {
  std::string name;                   ///< family tag for diagnostics, e.g. "HSN(3,Q2)"
  Label seed;                         ///< the seed element
  std::vector<Generator> generators;  ///< all permutations have seed.size() positions

  int label_length() const noexcept { return static_cast<int>(seed.size()); }

  /// True iff every generator's inverse is also a generator, i.e. the
  /// resulting digraph is symmetric and models an undirected network.
  bool inverse_closed() const;

  /// Indices of super-generators / nucleus (non-super) generators.
  std::vector<int> super_generator_indices() const;
  std::vector<int> nucleus_generator_indices() const;

  /// Validates internal consistency (sizes match, names unique); aborts via
  /// assert in debug builds, returns false in release.
  bool valid() const;
};

}  // namespace ipg
