#include "ipg/ranking.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "util/narrow.hpp"

namespace ipg {

namespace {

/// All block arrangements reachable from the identity under the spec's
/// super-generators (next[p] = arr[beta[p]]), sorted lexicographically so
/// an arrangement's index is recoverable by binary search.
std::vector<Arrangement> reachable_arrangements(const SuperIPSpec& spec) {
  Arrangement start(as_size(spec.l));
  for (int i = 0; i < spec.l; ++i) start[as_size(i)] = static_cast<std::uint8_t>(i);
  std::vector<Arrangement> queue{start};
  Arrangement next(as_size(spec.l));
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Arrangement arr = queue[head];  // copy: queue may reallocate
    for (const Generator& g : spec.super_gens) {
      for (int p = 0; p < spec.l; ++p) next[as_size(p)] = arr[g.perm[p]];
      if (std::find(queue.begin(), queue.end(), next) == queue.end()) {
        queue.push_back(next);
      }
    }
  }
  std::sort(queue.begin(), queue.end());
  return queue;
}

}  // namespace

SuperRanking::SuperRanking(const SuperIPSpec& spec)
    : l_(spec.l), m_(spec.m), nucleus_(build_ip_graph(spec.nucleus_spec())) {
  if (static_cast<int>(spec.seed.size()) != l_ * m_) {
    throw std::invalid_argument(
        "SuperRanking: seed length must equal l*m blocks");
  }
  // Classify the seed shape. Plain: every block equals block 0. Symmetric:
  // block i is block 0 with all symbols shifted by i*m (make_symmetric's
  // output), which keeps the blocks' symbol ranges disjoint so the owner
  // block of any content is recoverable from a single symbol.
  const Label base = spec.seed_block(0);
  base_lo_ = *std::min_element(base.begin(), base.end());
  base_hi_ = *std::max_element(base.begin(), base.end());
  bool plain = true, symmetric = true;
  for (int i = 1; i < l_ && (plain || symmetric); ++i) {
    const Label block = spec.seed_block(i);
    for (int j = 0; j < m_; ++j) {
      if (block[as_size(j)] != base[as_size(j)]) plain = false;
      if (block[as_size(j)] != base[as_size(j)] + i * m_) symmetric = false;
    }
  }
  if (plain) {
    symmetric_ = false;
  } else if (symmetric && base_hi_ - base_lo_ < m_) {
    symmetric_ = true;
    arrangements_ = reachable_arrangements(spec);
  } else {
    throw std::invalid_argument(
        "SuperRanking requires a plain super-IP seed (identical blocks) or "
        "a symmetric one (blocks shifted by i*m)");
  }
  for (int i = 0; i < l_; ++i) ml_ *= nucleus_.num_nodes();

  // Hash-free digit lookup: nucleus labels packed and sorted once.
  block_codec_ = LabelCodec::for_shape(m_, base_hi_);
  if (block_codec_.valid()) {
    sorted_blocks_.reserve(nucleus_.num_nodes());
    Label x;
    for (Node v = 0; v < nucleus_.num_nodes(); ++v) {
      nucleus_.label_into(v, x);
      sorted_blocks_.emplace_back(block_codec_.pack(x), v);
    }
    std::sort(sorted_blocks_.begin(), sorted_blocks_.end());
  }
}

int SuperRanking::owner_block(const Label& full, int i) const noexcept {
  if (!symmetric_) return 0;
  return (full[as_size(i * m_)] - base_lo_) / m_;
}

Node SuperRanking::digit_lookup(const Label& full, int i, int shift) const {
  // Reject symbols outside the base block's range up front: the packed key
  // below writes exactly bits() bits per symbol and must not overflow, and
  // the fallback map would just miss anyway.
  for (int j = 0; j < m_; ++j) {
    const int s = full[as_size(i * m_ + j)];
    if (s < shift + base_lo_ || s > shift + base_hi_) return kInvalidIPNode;
  }
  if (!sorted_blocks_.empty()) {
    // Pack the (unshifted) content straight off the full label — no
    // temporary Label on this path, it is the implicit topology's inner
    // loop.
    PackedLabel key;
    const int bits = block_codec_.bits();
    for (int j = 0; j < m_; ++j) {
      const auto sym = static_cast<std::uint64_t>(full[as_size(i * m_ + j)] - shift);
      key.w[(j * bits) >> 6] |= sym << ((j * bits) & 63);
    }
    const auto it = std::lower_bound(
        sorted_blocks_.begin(), sorted_blocks_.end(), key,
        [](const std::pair<PackedLabel, Node>& a, const PackedLabel& k) {
          return a.first < k;
        });
    if (it == sorted_blocks_.end() || !(it->first == key)) return kInvalidIPNode;
    return it->second;
  }
  Label content(full.begin() + i * m_, full.begin() + (i + 1) * m_);
  for (std::uint8_t& s : content) s = static_cast<std::uint8_t>(s - shift);
  return nucleus_.node_of(content);
}

std::uint32_t SuperRanking::digit(const Label& full, int i) const {
  const Node v = digit_lookup(full, i, owner_block(full, i) * m_);
  assert(v != kInvalidIPNode && "block content outside the nucleus orbit");
  return v;
}

std::uint64_t SuperRanking::rank(const Label& full) const {
  std::uint64_t r = 0;
  if (symmetric_) {
    Arrangement arr(as_size(l_));
    for (int p = 0; p < l_; ++p) {
      arr[as_size(p)] = static_cast<std::uint8_t>(owner_block(full, p));
    }
    const auto it =
        std::lower_bound(arrangements_.begin(), arrangements_.end(), arr);
    assert(it != arrangements_.end() && *it == arr &&
           "block arrangement not reachable from the seed");
    r = static_cast<std::uint64_t>(it - arrangements_.begin());
  }
  for (int i = 0; i < l_; ++i) r = r * nucleus_.num_nodes() + digit(full, i);
  return r;
}

std::uint64_t SuperRanking::try_rank(const Label& full) const {
  if (static_cast<int>(full.size()) != l_ * m_) return kInvalidRank;
  std::uint64_t r = 0;
  if (symmetric_) {
    Arrangement arr(as_size(l_));
    for (int p = 0; p < l_; ++p) {
      const int sym = full[as_size(p * m_)];
      if (sym < base_lo_) return kInvalidRank;
      const int b = (sym - base_lo_) / m_;
      if (b >= l_) return kInvalidRank;
      arr[as_size(p)] = static_cast<std::uint8_t>(b);
    }
    const auto it =
        std::lower_bound(arrangements_.begin(), arrangements_.end(), arr);
    if (it == arrangements_.end() || *it != arr) return kInvalidRank;
    r = static_cast<std::uint64_t>(it - arrangements_.begin());
  }
  for (int i = 0; i < l_; ++i) {
    const Node d = digit_lookup(full, i, owner_block(full, i) * m_);
    if (d == kInvalidIPNode) return kInvalidRank;
    r = r * nucleus_.num_nodes() + d;
  }
  return r;
}

Label SuperRanking::unrank(std::uint64_t r) const {
  Label out;
  unrank_into(r, out);
  return out;
}

void SuperRanking::unrank_into(std::uint64_t r, Label& out) const {
  assert(r < size());
  out.resize(as_size(l_) * as_size(m_));
  const std::uint64_t arr_idx = r / ml_;
  std::uint64_t digits = r % ml_;
  const std::uint64_t M = nucleus_.num_nodes();
  Label block;
  for (int i = l_ - 1; i >= 0; --i) {
    const Node d = static_cast<Node>(digits % M);
    digits /= M;
    nucleus_.label_into(d, block);
    const int shift =
        symmetric_ ? arrangements_[arr_idx][as_size(i)] * m_ : 0;
    for (int j = 0; j < m_; ++j) {
      out[as_size(i * m_ + j)] = static_cast<std::uint8_t>(block[as_size(j)] + shift);
    }
  }
}

std::string SuperRanking::radix_string(const Label& full) const {
  const bool wide = nucleus_.num_nodes() > 10;
  std::string out;
  for (int i = 0; i < l_; ++i) {
    if (wide && i != 0) out += '.';
    out += std::to_string(digit(full, i));
  }
  return out;
}

}  // namespace ipg
