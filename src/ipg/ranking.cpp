#include "ipg/ranking.hpp"

#include <cassert>
#include <stdexcept>

namespace ipg {

SuperRanking::SuperRanking(const SuperIPSpec& spec)
    : l_(spec.l), m_(spec.m), nucleus_(build_ip_graph(spec.nucleus_spec())) {
  // Ranking presumes every super-symbol's content lies in the nucleus
  // orbit, which holds exactly when all seed blocks are identical.
  for (int i = 1; i < l_; ++i) {
    if (spec.seed_block(i) != spec.seed_block(0)) {
      throw std::invalid_argument(
          "SuperRanking requires a plain super-IP seed (identical blocks)");
    }
  }
}

std::uint32_t SuperRanking::digit(const Label& full, int i) const {
  const Node v = nucleus_.node_of(block_of(full, i, m_));
  assert(v != kInvalidIPNode && "block content outside the nucleus orbit");
  return v;
}

std::uint64_t SuperRanking::rank(const Label& full) const {
  std::uint64_t r = 0;
  for (int i = 0; i < l_; ++i) r = r * nucleus_.num_nodes() + digit(full, i);
  return r;
}

std::string SuperRanking::radix_string(const Label& full) const {
  const bool wide = nucleus_.num_nodes() > 10;
  std::string out;
  for (int i = 0; i < l_; ++i) {
    if (wide && i != 0) out += '.';
    out += std::to_string(digit(full, i));
  }
  return out;
}

}  // namespace ipg
