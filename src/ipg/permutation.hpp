#pragma once
// Index permutations: the generators of the IP-graph model (Section 2).
//
// A permutation over k positions is stored in one-line notation `p` and
// acts on a label X by (Xp)[i] = X[p[i]]. This matches the paper's
// convention: the star-graph generator pi_1 = (1,2) maps x1 x2 x3... to
// x2 x1 x3..., and pi_6 = 456123 maps y1..y6 to y4 y5 y6 y1 y2 y3.
// Positions are 0-based in code; doc comments quote the paper's 1-based
// cycle notation where helpful.

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "ipg/label.hpp"
#include "util/narrow.hpp"

namespace ipg {

class Permutation {
 public:
  Permutation() = default;

  /// From one-line notation; `one_line` must be a permutation of 0..k-1.
  explicit Permutation(std::vector<std::uint8_t> one_line);

  /// Identity over k positions.
  static Permutation identity(int k);

  /// Transposition (i j) over k positions (paper: (i+1, j+1)).
  static Permutation transposition(int k, int i, int j);

  /// Cyclic left rotation by `s`: result[i] = label[(i + s) mod k]
  /// (the paper's L generator shape: 234...1 for s = 1).
  static Permutation rotate_left(int k, int s);

  /// Cyclic right rotation by `s` (the paper's R generator, L's inverse).
  static Permutation rotate_right(int k, int s);

  /// Reversal of the first `prefix` positions (flip generator shape).
  static Permutation flip_prefix(int k, int prefix);

  /// From disjoint cycles over 0-based positions, e.g. {{0,1},{2,3}}.
  static Permutation from_cycles(int k,
                                 std::initializer_list<std::initializer_list<int>> cycles);

  int size() const noexcept { return static_cast<int>(p_.size()); }
  std::uint8_t operator[](int i) const noexcept { return p_[as_size(i)]; }

  bool is_identity() const noexcept;

  /// Applies to a label of matching length: out[i] = in[p[i]].
  Label apply(const Label& x) const;

  /// In-place application using caller-provided scratch (hot path of the
  /// IP-graph builder).
  void apply_into(const Label& x, Label& out) const;

  /// Composition: (*this then `next`), i.e. applying the result to a label
  /// equals next.apply(this->apply(x)).
  Permutation then(const Permutation& next) const;

  Permutation inverse() const;

  /// Expands a permutation of `l` blocks into a permutation of l*m
  /// positions that moves whole m-symbol blocks without reordering inside
  /// them — exactly how super-generators act on super-symbols (Section 3.1).
  Permutation expand_blocks(int m) const;

  /// Embeds this k-permutation into `total` positions at offset `at`
  /// (identity elsewhere); used to lift nucleus generators to whole-label
  /// generators acting on the leftmost super-symbol.
  Permutation embed(int total, int at = 0) const;

  /// Cycle notation for diagnostics, e.g. "(0 1)(2 3)".
  std::string to_cycle_string() const;

  friend bool operator==(const Permutation&, const Permutation&) = default;

 private:
  std::vector<std::uint8_t> p_;
};

}  // namespace ipg
