#include "ipg/build.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "graph/builder.hpp"
#include "ipg/static_check.hpp"
#include "util/narrow.hpp"

namespace ipg {

namespace {

#ifdef IPG_CONTRACTS_ACTIVE
/// Codec round-trip audit: every stored label must unpack/pack losslessly
/// and resolve back to its own node id through the label -> node index —
/// i.e. the Theorem 3.2-style numbering the builders hand out really is a
/// bijection over the closure.
bool labels_round_trip(const IPGraph& g) {
  if (g.index_size() != g.num_nodes()) return false;
  Label tmp;
  for (Node u = 0; u < g.num_nodes(); ++u) {
    g.label_into(u, tmp);
    if (g.packed()) {
      PackedLabel key;
      if (!g.codec_.try_pack(tmp, key)) return false;
      if (!(g.packed_labels_[u] == key)) return false;
    }
    if (g.node_of(tmp) != u) return false;
  }
  return true;
}
#endif  // IPG_CONTRACTS_ACTIVE

/// Post-build audit gate shared by every builder variant.
IPGraph audited(IPGraph g) {
  IPG_AUDIT(g.graph.validate_csr());
  IPG_AUDIT(labels_round_trip(g));
  return g;
}

/// Rough heap footprint of one std::vector<uint8_t> label: the inline
/// header plus a malloc block (16-byte quantum, ~16 bytes of allocator
/// bookkeeping). Used only for the memory counters reported by benches.
std::uint64_t label_heap_estimate(std::size_t len) {
  if (len == 0) return sizeof(Label);
  const std::uint64_t block = ((len + 15) / 16) * 16 + 16;
  return sizeof(Label) + block;
}

}  // namespace

Node IPGraph::node_of(const Label& x) const {
  if (packed()) {
    PackedLabel key;
    if (!codec_.try_pack(x, key)) return kInvalidIPNode;
    const std::uint64_t* v = packed_index_.find(key);
    return v == nullptr ? kInvalidIPNode : static_cast<Node>(*v);
  }
  const auto it = vec_index_.find(x);
  return it == vec_index_.end() ? kInvalidIPNode : it->second;
}

Node IPGraph::apply_generator(Node u, int gen) const {
  assert(u < num_nodes());
  assert(gen >= 0 && gen < static_cast<int>(spec.generators.size()));
  if (packed()) {
    const std::uint64_t* v =
        packed_index_.find(packed_gens_[as_size(gen)].apply(packed_labels_[u]));
    assert(v != nullptr && "generated set must be closed");
    return static_cast<Node>(*v);
  }
  Label scratch;
  return apply_generator(u, gen, scratch);
}

Node IPGraph::apply_generator(Node u, int gen, Label& scratch) const {
  assert(u < num_nodes());
  assert(gen >= 0 && gen < static_cast<int>(spec.generators.size()));
  if (packed()) return apply_generator(u, gen);
  spec.generators[as_size(gen)].perm.apply_into(vec_labels_[u], scratch);
  const auto it = vec_index_.find(scratch);
  assert(it != vec_index_.end() && "generated set must be closed");
  return it->second;
}

Label IPGraph::label(Node u) const {
  assert(u < num_nodes());
  return packed() ? codec_.unpack(packed_labels_[u]) : vec_labels_[u];
}

void IPGraph::label_into(Node u, Label& out) const {
  assert(u < num_nodes());
  if (packed()) {
    codec_.unpack(packed_labels_[u], out);
  } else {
    out = vec_labels_[u];
  }
}

const std::vector<Label>& IPGraph::labels() const {
  if (!packed()) return vec_labels_;
  if (labels_view_.size() != num_nodes()) {
    labels_view_.resize(num_nodes());
    for (Node u = 0; u < num_nodes(); ++u) {
      codec_.unpack(packed_labels_[u], labels_view_[u]);
    }
  }
  return labels_view_;
}

std::uint64_t IPGraph::index_size() const noexcept {
  return packed() ? packed_index_.size() : vec_index_.size();
}

std::uint64_t IPGraph::label_bytes() const noexcept {
  if (packed()) return packed_labels_.memory_bytes();
  std::uint64_t total = 0;
  for (const Label& x : vec_labels_) total += label_heap_estimate(x.size());
  return total + sizeof(Label) * (vec_labels_.capacity() - vec_labels_.size());
}

std::uint64_t IPGraph::index_bytes() const noexcept {
  if (packed()) return packed_index_.memory_bytes();
  // libstdc++ node layout: next pointer + cached hash + pair<Label, Node>,
  // plus the bucket array and each key's own heap block.
  std::uint64_t total = vec_index_.bucket_count() * sizeof(void*);
  // Sum-reduction over all entries; order-independent.
  // ipg-lint: allow(unordered-iteration)
  for (const auto& [key, value] : vec_index_) {
    (void)value;
    total += 2 * sizeof(void*) + sizeof(std::pair<Label, Node>) +
             label_heap_estimate(key.size()) - sizeof(Label) + 16;
  }
  return total;
}

namespace {

struct PendingArc {
  Node u, v;
  EdgeTag tag;
};

Graph arcs_to_graph(Node num_nodes, std::vector<PendingArc>& arcs) {
  GraphBuilder b(num_nodes, /*tagged=*/true);
  b.reserve(arcs.size());
  for (const PendingArc& a : arcs) b.add_arc(a.u, a.v, a.tag);
  return std::move(b).build();
}

[[noreturn]] void throw_too_large(const IPGraphSpec& spec) {
  throw std::length_error("IP graph closure for " + spec.name +
                          " exceeds max_nodes");
}

/// Serial BFS closure on packed labels: the whole loop runs on one or two
/// machine words per label, with zero heap traffic beyond the growing
/// tables themselves.
IPGraph build_serial_packed(IPGraphSpec spec, std::uint64_t max_nodes,
                            const LabelCodec& codec) {
  IPGraph out;
  out.codec_ = codec;
  out.packed_gens_.reserve(spec.generators.size());
  for (const Generator& g : spec.generators) {
    out.packed_gens_.emplace_back(codec, g.perm);
  }
  out.packed_labels_ = PackedLabelStore(codec.words());
  out.packed_labels_.push_back(codec.pack(spec.seed));
  out.packed_index_.try_emplace(out.packed_labels_[0], 0);

  std::vector<PendingArc> arcs;
  for (Node u = 0; u < out.packed_labels_.size(); ++u) {
    const PackedLabel current = out.packed_labels_[u];
    for (std::size_t gen = 0; gen < out.packed_gens_.size(); ++gen) {
      const PackedLabel next = out.packed_gens_[gen].apply(current);
      const auto [slot, inserted] =
          out.packed_index_.try_emplace(next, out.packed_labels_.size());
      if (inserted) {
        if (out.packed_labels_.size() >= max_nodes) throw_too_large(spec);
        out.packed_labels_.push_back(next);
      }
      arcs.push_back(PendingArc{u, static_cast<Node>(*slot),
                                static_cast<EdgeTag>(gen)});
    }
  }

  out.graph = arcs_to_graph(static_cast<Node>(out.packed_labels_.size()), arcs);
  out.spec = std::move(spec);
  return out;
}

/// Serial BFS closure on byte-vector labels (the pre-codec representation,
/// still used when labels exceed 128 packed bits).
IPGraph build_serial_vector(IPGraphSpec spec, std::uint64_t max_nodes) {
  IPGraph out;
  out.vec_labels_.push_back(spec.seed);
  out.vec_index_.emplace(spec.seed, Node{0});

  std::vector<PendingArc> arcs;
  Label scratch;

  // BFS over labels; vec_labels_ doubles as the queue.
  for (Node u = 0; u < out.vec_labels_.size(); ++u) {
    for (std::size_t gen = 0; gen < spec.generators.size(); ++gen) {
      // Careful: vec_labels_ may reallocate when a new node is appended, so
      // apply the generator before taking any reference that must survive.
      spec.generators[gen].perm.apply_into(out.vec_labels_[u], scratch);
      auto [it, inserted] = out.vec_index_.try_emplace(
          scratch, static_cast<Node>(out.vec_labels_.size()));
      if (inserted) {
        if (out.vec_labels_.size() >= max_nodes) throw_too_large(spec);
        out.vec_labels_.push_back(scratch);
      }
      arcs.push_back(PendingArc{u, it->second, static_cast<EdgeTag>(gen)});
    }
  }

  out.graph = arcs_to_graph(static_cast<Node>(out.vec_labels_.size()), arcs);
  out.spec = std::move(spec);
  return out;
}

// ---------------------------------------------------------------------------
// Parallel closure, shared between the packed and vector representations
// via a small "label space" adapter: element type, generator application,
// hashing, and a map with try_emplace / find / for_each.

/// Packed-label space: elements are PackedLabels, the seen-set shards and
/// the global index are flat open-addressing tables.
struct PackedSpace {
  using Elem = PackedLabel;
  using Map = PackedLabelMap;

  LabelCodec codec;
  std::vector<PackedPerm> gens;
  Elem seed;

  PackedSpace(const IPGraphSpec& spec, const LabelCodec& c) : codec(c) {
    gens.reserve(spec.generators.size());
    for (const Generator& g : spec.generators) gens.emplace_back(c, g.perm);
    seed = c.pack(spec.seed);
  }

  void apply(std::size_t gen, const Elem& in, Elem& out) const {
    out = gens[gen].apply(in);
  }
  static std::size_t hash(const Elem& x) noexcept {
    return PackedLabelHash{}(x);
  }
};

/// Byte-vector space: the legacy representation, with unordered_map shards
/// behind the same map interface.
struct VectorSpace {
  using Elem = Label;

  struct Map {
    std::unordered_map<Label, std::uint64_t, LabelHash> m;

    std::pair<std::uint64_t*, bool> try_emplace(const Label& k,
                                                std::uint64_t v) {
      const auto [it, inserted] = m.try_emplace(k, v);
      return {&it->second, inserted};
    }
    const std::uint64_t* find(const Label& k) const {
      const auto it = m.find(k);
      return it == m.end() ? nullptr : &it->second;
    }
    std::uint64_t* find(const Label& k) {
      const auto it = m.find(k);
      return it == m.end() ? nullptr : &it->second;
    }
    std::uint64_t size() const { return m.size(); }
    template <typename F>
    void for_each(F&& f) const {
      // The only caller drains every shard into one vector and sorts it by
      // discovery key before ids are assigned (see the parallel closure),
      // so the visit order here never reaches a result.
      // ipg-lint: allow(unordered-iteration)
      for (const auto& [k, v] : m) f(k, v);
    }
  };

  const IPGraphSpec* spec;
  Elem seed;

  explicit VectorSpace(const IPGraphSpec& s) : spec(&s), seed(s.seed) {}

  void apply(std::size_t gen, const Elem& in, Elem& out) const {
    spec->generators[gen].perm.apply_into(in, out);
  }
  static std::size_t hash(const Elem& x) noexcept { return LabelHash{}(x); }
};

void export_storage(IPGraph& out, PackedSpace& space,
                    std::vector<PackedLabel>&& elems, PackedLabelMap&& index) {
  out.codec_ = space.codec;
  out.packed_gens_ = std::move(space.gens);
  out.packed_labels_ = PackedLabelStore(space.codec.words());
  out.packed_labels_.reserve(elems.size());
  for (const PackedLabel& e : elems) out.packed_labels_.push_back(e);
  out.packed_index_ = std::move(index);
}

void export_storage(IPGraph& out, VectorSpace&, std::vector<Label>&& elems,
                    VectorSpace::Map&& index) {
  out.vec_labels_ = std::move(elems);
  out.vec_index_.reserve(index.m.size());
  // Rebuilds one hash map from another; the content, not the order, is the
  // result. ipg-lint: allow(unordered-iteration)
  for (const auto& [k, v] : index.m) {
    out.vec_index_.emplace(k, static_cast<Node>(v));
  }
}

/// Frontier-parallel closure. Level L is expanded product-parallel (one
/// product = one (node, generator) pair, ordered exactly as the serial
/// loop visits them); labels not yet in the global index are funneled into
/// a seen-set sharded by hash, each shard recording the smallest product
/// key at which its label was discovered. Sorting the unique new labels by
/// that key reproduces the serial discovery order, so node ids — and with
/// them the label table, index and arc list — come out byte-identical to
/// the serial builder.
template <typename Space, typename... SpaceArgs>
IPGraph build_ip_graph_parallel(IPGraphSpec spec, std::uint64_t max_nodes,
                                int threads, const SpaceArgs&... space_args) {
  using Elem = typename Space::Elem;
  using Map = typename Space::Map;

  // The space may keep a pointer to `spec`, so it is built against this
  // function's own copy (moved into the result only after the last use).
  Space space(spec, space_args...);
  ThreadPool pool(threads);
  std::vector<Elem> elems;  // node id -> element, BFS order; also the queue
  Map index;                // element -> node id
  elems.push_back(space.seed);
  index.try_emplace(elems[0], 0);

  const std::uint64_t num_gens = spec.generators.size();
  std::vector<PendingArc> arcs;

  // Shard count: a few per thread, power of two for cheap hash masking.
  std::uint64_t num_shards = 1;
  while (num_shards < static_cast<std::uint64_t>(threads) * 4) num_shards <<= 1;
  num_shards = std::min<std::uint64_t>(num_shards, 256);

  struct Candidate {
    Elem elem;
    std::uint64_t key;  ///< product index within the level (serial order)
  };

  Node level_begin = 0;
  while (level_begin < elems.size()) {
    const Node level_end = static_cast<Node>(elems.size());
    const std::uint64_t products =
        static_cast<std::uint64_t>(level_end - level_begin) * num_gens;
    const std::uint64_t num_chunks = std::min<std::uint64_t>(
        products, static_cast<std::uint64_t>(threads) * 4);

    // targets[p] = node id reached by product p, or kInvalidIPNode while
    // the label is pending id assignment.
    std::vector<Node> targets(products, kInvalidIPNode);
    // buckets[chunk][shard]: candidates discovered by `chunk` that hash
    // into `shard`. Only the chunk's executor writes its row.
    std::vector<std::vector<std::vector<Candidate>>> buckets(
        num_chunks, std::vector<std::vector<Candidate>>(num_shards));

    pool.parallel_for(
        products, num_chunks,
        [&](int, std::uint64_t chunk, std::uint64_t begin, std::uint64_t end) {
          Elem scratch;
          for (std::uint64_t p = begin; p < end; ++p) {
            const Node u = level_begin + static_cast<Node>(p / num_gens);
            const std::size_t gen = static_cast<std::size_t>(p % num_gens);
            space.apply(gen, elems[u], scratch);
            if (const std::uint64_t* v = index.find(scratch)) {
              targets[p] = static_cast<Node>(*v);
            } else {
              const std::size_t h = Space::hash(scratch);
              buckets[chunk][h & (num_shards - 1)].push_back(
                  Candidate{scratch, p});
            }
          }
        });

    // Shard-parallel dedup: one owner per shard, chunks scanned in order.
    std::vector<Map> shard_min(num_shards);
    pool.parallel_for(num_shards, num_shards,
                      [&](int, std::uint64_t, std::uint64_t begin,
                          std::uint64_t end) {
                        for (std::uint64_t s = begin; s < end; ++s) {
                          for (std::uint64_t c = 0; c < num_chunks; ++c) {
                            for (Candidate& cand : buckets[c][s]) {
                              const auto [slot, inserted] =
                                  shard_min[s].try_emplace(cand.elem,
                                                           cand.key);
                              if (!inserted) {
                                *slot = std::min(*slot, cand.key);
                              }
                            }
                          }
                        }
                      });

    // Serial id assignment in discovery-key order — byte-identical to the
    // serial builder's first-occurrence numbering. Map entries are stable
    // from here on (no further inserts), so keeping pointers is safe.
    struct Unique {
      std::uint64_t key;
      const Elem* elem;
      std::uint64_t shard;
    };
    std::vector<Unique> uniques;
    for (std::uint64_t s = 0; s < num_shards; ++s) {
      shard_min[s].for_each([&](const Elem& elem, std::uint64_t key) {
        uniques.push_back(Unique{key, &elem, s});
      });
    }
    std::sort(uniques.begin(), uniques.end(),
              [](const Unique& a, const Unique& b) { return a.key < b.key; });
    for (const Unique& uq : uniques) {
      if (elems.size() >= max_nodes) throw_too_large(spec);
      const Node id = static_cast<Node>(elems.size());
      elems.push_back(*uq.elem);
      index.try_emplace(*uq.elem, id);
      // Re-point the shard entry at the final id for arc resolution below.
      *shard_min[uq.shard].find(*uq.elem) = id;
    }

    // Resolve the pending arc targets (chunk rows are disjoint; shard maps
    // are now read-only).
    pool.parallel_for(
        num_chunks, num_chunks,
        [&](int, std::uint64_t, std::uint64_t begin, std::uint64_t end) {
          for (std::uint64_t c = begin; c < end; ++c) {
            for (std::uint64_t s = 0; s < num_shards; ++s) {
              for (const Candidate& cand : buckets[c][s]) {
                targets[cand.key] =
                    static_cast<Node>(*shard_min[s].find(cand.elem));
              }
            }
          }
        });

    for (std::uint64_t p = 0; p < products; ++p) {
      assert(targets[p] != kInvalidIPNode && "generated set must be closed");
      arcs.push_back(PendingArc{level_begin + static_cast<Node>(p / num_gens),
                                targets[p], static_cast<EdgeTag>(p % num_gens)});
    }
    level_begin = level_end;
  }

  const Node num_nodes = static_cast<Node>(elems.size());
  IPGraph out;
  export_storage(out, space, std::move(elems), std::move(index));
  out.graph = arcs_to_graph(num_nodes, arcs);
  out.spec = std::move(spec);
  return out;
}

}  // namespace

IPGraph build_ip_graph(IPGraphSpec spec, std::uint64_t max_nodes) {
  if (!spec.valid()) throw std::invalid_argument("invalid IPGraphSpec: " + spec.name);
  const LabelCodec codec = LabelCodec::for_label(spec.seed);
  if (codec.valid()) {
    return audited(build_serial_packed(std::move(spec), max_nodes, codec));
  }
  return audited(build_serial_vector(std::move(spec), max_nodes));
}

IPGraph build_ip_graph_unpacked(IPGraphSpec spec, std::uint64_t max_nodes) {
  if (!spec.valid()) throw std::invalid_argument("invalid IPGraphSpec: " + spec.name);
  return audited(build_serial_vector(std::move(spec), max_nodes));
}

IPGraph build_ip_graph(IPGraphSpec spec, std::uint64_t max_nodes,
                       const ExecPolicy& exec) {
  const int threads = exec.resolved_threads();
  if (threads == 1) return build_ip_graph(std::move(spec), max_nodes);
  if (!spec.valid()) throw std::invalid_argument("invalid IPGraphSpec: " + spec.name);
  const LabelCodec codec = LabelCodec::for_label(spec.seed);
  if (codec.valid()) {
    return audited(build_ip_graph_parallel<PackedSpace>(std::move(spec),
                                                        max_nodes, threads,
                                                        codec));
  }
  return audited(build_ip_graph_parallel<VectorSpace>(std::move(spec),
                                                      max_nodes, threads));
}

}  // namespace ipg
