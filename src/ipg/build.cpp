#include "ipg/build.hpp"

#include <cassert>
#include <stdexcept>

#include "graph/builder.hpp"

namespace ipg {

Node IPGraph::node_of(const Label& x) const {
  const auto it = index.find(x);
  return it == index.end() ? kInvalidIPNode : it->second;
}

Node IPGraph::apply_generator(Node u, int gen) const {
  assert(u < num_nodes());
  assert(gen >= 0 && gen < static_cast<int>(spec.generators.size()));
  const Node v = node_of(spec.generators[gen].perm.apply(labels[u]));
  assert(v != kInvalidIPNode && "generated set must be closed");
  return v;
}

IPGraph build_ip_graph(IPGraphSpec spec, std::uint64_t max_nodes) {
  if (!spec.valid()) throw std::invalid_argument("invalid IPGraphSpec: " + spec.name);

  IPGraph out;
  out.labels.push_back(spec.seed);
  out.index.emplace(spec.seed, Node{0});

  struct Arc {
    Node u, v;
    EdgeTag tag;
  };
  std::vector<Arc> arcs;
  Label scratch;

  // BFS over labels; out.labels doubles as the queue.
  for (Node u = 0; u < out.labels.size(); ++u) {
    for (std::size_t gen = 0; gen < spec.generators.size(); ++gen) {
      // Careful: out.labels may reallocate when a new node is appended, so
      // apply the generator before taking any reference that must survive.
      spec.generators[gen].perm.apply_into(out.labels[u], scratch);
      auto [it, inserted] = out.index.try_emplace(scratch, static_cast<Node>(out.labels.size()));
      if (inserted) {
        if (out.labels.size() >= max_nodes) {
          throw std::length_error("IP graph closure for " + spec.name +
                                  " exceeds max_nodes");
        }
        out.labels.push_back(scratch);
      }
      arcs.push_back(Arc{u, it->second, static_cast<EdgeTag>(gen)});
    }
  }

  GraphBuilder b(static_cast<Node>(out.labels.size()), /*tagged=*/true);
  b.reserve(arcs.size());
  for (const Arc& a : arcs) b.add_arc(a.u, a.v, a.tag);
  out.graph = std::move(b).build();
  out.spec = std::move(spec);
  return out;
}

}  // namespace ipg
