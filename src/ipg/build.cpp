#include "ipg/build.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "graph/builder.hpp"

namespace ipg {

Node IPGraph::node_of(const Label& x) const {
  const auto it = index.find(x);
  return it == index.end() ? kInvalidIPNode : it->second;
}

Node IPGraph::apply_generator(Node u, int gen) const {
  assert(u < num_nodes());
  assert(gen >= 0 && gen < static_cast<int>(spec.generators.size()));
  const Node v = node_of(spec.generators[gen].perm.apply(labels[u]));
  assert(v != kInvalidIPNode && "generated set must be closed");
  return v;
}

IPGraph build_ip_graph(IPGraphSpec spec, std::uint64_t max_nodes) {
  if (!spec.valid()) throw std::invalid_argument("invalid IPGraphSpec: " + spec.name);

  IPGraph out;
  out.labels.push_back(spec.seed);
  out.index.emplace(spec.seed, Node{0});

  struct Arc {
    Node u, v;
    EdgeTag tag;
  };
  std::vector<Arc> arcs;
  Label scratch;

  // BFS over labels; out.labels doubles as the queue.
  for (Node u = 0; u < out.labels.size(); ++u) {
    for (std::size_t gen = 0; gen < spec.generators.size(); ++gen) {
      // Careful: out.labels may reallocate when a new node is appended, so
      // apply the generator before taking any reference that must survive.
      spec.generators[gen].perm.apply_into(out.labels[u], scratch);
      auto [it, inserted] = out.index.try_emplace(scratch, static_cast<Node>(out.labels.size()));
      if (inserted) {
        if (out.labels.size() >= max_nodes) {
          throw std::length_error("IP graph closure for " + spec.name +
                                  " exceeds max_nodes");
        }
        out.labels.push_back(scratch);
      }
      arcs.push_back(Arc{u, it->second, static_cast<EdgeTag>(gen)});
    }
  }

  GraphBuilder b(static_cast<Node>(out.labels.size()), /*tagged=*/true);
  b.reserve(arcs.size());
  for (const Arc& a : arcs) b.add_arc(a.u, a.v, a.tag);
  out.graph = std::move(b).build();
  out.spec = std::move(spec);
  return out;
}

namespace {

/// Frontier-parallel closure. Level L is expanded product-parallel (one
/// product = one (node, generator) pair, ordered exactly as the serial
/// loop visits them); labels not yet in the global index are funneled into
/// a seen-set sharded by hash, each shard recording the smallest product
/// key at which its label was discovered. Sorting the unique new labels by
/// that key reproduces the serial discovery order, so node ids — and with
/// them the label table, index and arc list — come out byte-identical to
/// build_ip_graph's serial BFS.
IPGraph build_ip_graph_parallel(IPGraphSpec spec, std::uint64_t max_nodes,
                                int threads) {
  if (!spec.valid()) throw std::invalid_argument("invalid IPGraphSpec: " + spec.name);

  ThreadPool pool(threads);
  IPGraph out;
  out.labels.push_back(spec.seed);
  out.index.emplace(spec.seed, Node{0});

  const std::uint64_t num_gens = spec.generators.size();

  struct Arc {
    Node u, v;
    EdgeTag tag;
  };
  std::vector<Arc> arcs;

  // Shard count: a few per thread, power of two for cheap hash masking.
  std::uint64_t num_shards = 1;
  while (num_shards < static_cast<std::uint64_t>(threads) * 4) num_shards <<= 1;
  num_shards = std::min<std::uint64_t>(num_shards, 256);

  struct Candidate {
    Label label;
    std::uint64_t key;  ///< product index within the level (serial order)
  };
  using ShardMap = std::unordered_map<Label, std::uint64_t, LabelHash>;

  Node level_begin = 0;
  while (level_begin < out.labels.size()) {
    const Node level_end = static_cast<Node>(out.labels.size());
    const std::uint64_t products =
        static_cast<std::uint64_t>(level_end - level_begin) * num_gens;
    const std::uint64_t num_chunks = std::min<std::uint64_t>(
        products, static_cast<std::uint64_t>(threads) * 4);

    // targets[p] = node id reached by product p, or kInvalidIPNode while
    // the label is pending id assignment.
    std::vector<Node> targets(products, kInvalidIPNode);
    // buckets[chunk][shard]: candidates discovered by `chunk` that hash
    // into `shard`. Only the chunk's executor writes its row.
    std::vector<std::vector<std::vector<Candidate>>> buckets(
        num_chunks, std::vector<std::vector<Candidate>>(num_shards));

    pool.parallel_for(
        products, num_chunks,
        [&](int, std::uint64_t chunk, std::uint64_t begin, std::uint64_t end) {
          Label scratch;
          for (std::uint64_t p = begin; p < end; ++p) {
            const Node u = level_begin + static_cast<Node>(p / num_gens);
            const std::size_t gen = static_cast<std::size_t>(p % num_gens);
            spec.generators[gen].perm.apply_into(out.labels[u], scratch);
            const auto it = out.index.find(scratch);
            if (it != out.index.end()) {
              targets[p] = it->second;
            } else {
              const std::size_t h = LabelHash{}(scratch);
              buckets[chunk][h & (num_shards - 1)].push_back(
                  Candidate{scratch, p});
            }
          }
        });

    // Shard-parallel dedup: one owner per shard, chunks scanned in order.
    std::vector<ShardMap> shard_min(num_shards);
    pool.parallel_for(num_shards, num_shards,
                      [&](int, std::uint64_t, std::uint64_t begin,
                          std::uint64_t end) {
                        for (std::uint64_t s = begin; s < end; ++s) {
                          for (std::uint64_t c = 0; c < num_chunks; ++c) {
                            for (Candidate& cand : buckets[c][s]) {
                              const auto [it, inserted] =
                                  shard_min[s].try_emplace(cand.label,
                                                           cand.key);
                              if (!inserted) {
                                it->second = std::min(it->second, cand.key);
                              }
                            }
                          }
                        }
                      });

    // Serial id assignment in discovery-key order — byte-identical to the
    // serial builder's first-occurrence numbering.
    struct Unique {
      std::uint64_t key;
      const Label* label;
      std::uint64_t shard;
    };
    std::vector<Unique> uniques;
    for (std::uint64_t s = 0; s < num_shards; ++s) {
      for (const auto& [label, key] : shard_min[s]) {
        uniques.push_back(Unique{key, &label, s});
      }
    }
    std::sort(uniques.begin(), uniques.end(),
              [](const Unique& a, const Unique& b) { return a.key < b.key; });
    for (const Unique& uq : uniques) {
      if (out.labels.size() >= max_nodes) {
        throw std::length_error("IP graph closure for " + spec.name +
                                " exceeds max_nodes");
      }
      const Node id = static_cast<Node>(out.labels.size());
      out.labels.push_back(*uq.label);
      out.index.emplace(*uq.label, id);
      // Re-point the shard entry at the final id for arc resolution below.
      shard_min[uq.shard].find(*uq.label)->second = id;
    }

    // Resolve the pending arc targets (chunk rows are disjoint; shard maps
    // are now read-only).
    pool.parallel_for(
        num_chunks, num_chunks,
        [&](int, std::uint64_t, std::uint64_t begin, std::uint64_t end) {
          for (std::uint64_t c = begin; c < end; ++c) {
            for (std::uint64_t s = 0; s < num_shards; ++s) {
              for (const Candidate& cand : buckets[c][s]) {
                targets[cand.key] =
                    static_cast<Node>(shard_min[s].find(cand.label)->second);
              }
            }
          }
        });

    for (std::uint64_t p = 0; p < products; ++p) {
      assert(targets[p] != kInvalidIPNode && "generated set must be closed");
      arcs.push_back(Arc{level_begin + static_cast<Node>(p / num_gens),
                         targets[p], static_cast<EdgeTag>(p % num_gens)});
    }
    level_begin = level_end;
  }

  GraphBuilder b(static_cast<Node>(out.labels.size()), /*tagged=*/true);
  b.reserve(arcs.size());
  for (const Arc& a : arcs) b.add_arc(a.u, a.v, a.tag);
  out.graph = std::move(b).build();
  out.spec = std::move(spec);
  return out;
}

}  // namespace

IPGraph build_ip_graph(IPGraphSpec spec, std::uint64_t max_nodes,
                       const ExecPolicy& exec) {
  const int threads = exec.resolved_threads();
  if (threads == 1) return build_ip_graph(std::move(spec), max_nodes);
  return build_ip_graph_parallel(std::move(spec), max_nodes, threads);
}

}  // namespace ipg
