#include "ipg/packed_label.hpp"

#include <algorithm>
#include <cassert>
#include "util/narrow.hpp"

namespace ipg {

LabelCodec LabelCodec::for_shape(int length, int max_symbol) noexcept {
  LabelCodec out;
  if (length <= 0 || max_symbol < 0 || max_symbol > 255) return out;
  const int bits = max_symbol < 16 ? 4 : 8;
  if (length * bits > 128) return out;
  out.length_ = length;
  out.bits_ = bits;
  out.mask_ = (1ull << bits) - 1;
  return out;
}

LabelCodec LabelCodec::for_label(const Label& seed) noexcept {
  if (seed.empty()) return {};
  const int max_symbol = *std::max_element(seed.begin(), seed.end());
  return for_shape(static_cast<int>(seed.size()), max_symbol);
}

PackedLabel LabelCodec::pack(const Label& x) const {
  PackedLabel out;
  [[maybe_unused]] const bool ok = try_pack(x, out);
  assert(ok && "label does not match the codec shape");
  return out;
}

bool LabelCodec::try_pack(const Label& x, PackedLabel& out) const {
  if (!valid() || static_cast<int>(x.size()) != length_) return false;
  PackedLabel packed;
  for (int i = 0; i < length_; ++i) {
    if (x[as_size(i)] > mask_) return false;
    const int bit = i * bits_;
    packed.w[bit >> 6] |= static_cast<std::uint64_t>(x[as_size(i)]) << (bit & 63);
  }
  out = packed;
  return true;
}

void LabelCodec::unpack(const PackedLabel& x, Label& out) const {
  assert(valid());
  out.resize(static_cast<std::size_t>(length_));
  for (int i = 0; i < length_; ++i) out[as_size(i)] = symbol(x, i);
}

Label LabelCodec::unpack(const PackedLabel& x) const {
  Label out;
  unpack(x, out);
  return out;
}

PackedPerm::PackedPerm(const LabelCodec& codec, const Permutation& p) {
  assert(codec.valid() && p.size() == codec.length());
  const int bits = codec.bits();
  mask_ = (1ull << bits) - 1;
  keep_[0] = keep_[1] = 0;
  for (int i = 0; i < p.size(); ++i) {
    const int dst_bit = i * bits;
    if (p[i] == i) {
      keep_[dst_bit >> 6] |= mask_ << (dst_bit & 63);
      continue;
    }
    const int src_bit = p[i] * bits;
    moves_.push_back(Move{static_cast<std::uint8_t>(src_bit >> 6),
                          static_cast<std::uint8_t>(src_bit & 63),
                          static_cast<std::uint8_t>(dst_bit >> 6),
                          static_cast<std::uint8_t>(dst_bit & 63)});
  }
}

}  // namespace ipg
