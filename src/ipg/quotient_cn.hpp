#pragma once
// Quotient variants of super-IP graphs (Fig. 3 / Conclusion): merge each
// small sub-network of the nucleus into a single physical node so that a
// network with a large nucleus (e.g. CN(l, Q7)) meets a per-module node
// budget (e.g. 16 = 2^(7-3) nodes after merging each Q3). The paper's
// QCN(l; Q7/Q3) is make_quotient_cn over CN(l, Q7) with merged_bits = 3.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "ipg/families.hpp"

namespace ipg {

/// A quotient super network built over a hypercube-nucleus tuple network.
struct QuotientNetwork {
  Graph graph;                          ///< merged (physical) topology
  std::vector<std::uint32_t> module_of; ///< physical node -> module
  std::uint32_t num_modules = 0;
  std::uint32_t nodes_per_module = 0;   ///< physical nodes per module
};

/// Merges each 2^merged_bits-node subcube of the leading coordinate of a
/// CN/HSN-style tuple network whose nucleus is the binary-coded hypercube
/// Q_nucleus_bits (low `merged_bits` address bits collapse). Modules keep
/// the one-nucleus-per-module rule: all physical nodes sharing the suffix
/// (v2..vl).
QuotientNetwork make_quotient_cn(const TupleNetwork& net, int nucleus_bits,
                                 int merged_bits);

}  // namespace ipg
